package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"scale/internal/obs/eventlog"
)

// EnableContentionProfiling turns on the runtime's mutex and block
// profilers, feeding /debug/pprof/mutex and /debug/pprof/block.
// mutexFraction samples 1/n of contended mutex events (0 disables);
// blockRateNS samples one blocking event per n nanoseconds blocked
// (0 disables). Both profilers cost on the sampled paths, so daemons
// gate them behind explicit flags rather than defaulting on.
func EnableContentionProfiling(mutexFraction, blockRateNS int) {
	runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNS)
}

// HandlerConfig describes everything an exposition mux can serve.
// All fields are optional; the corresponding endpoints degrade to
// empty output (or, for health, to "always live / never ready-gated").
type HandlerConfig struct {
	Registry *Registry
	Tracer   *Tracer
	// Events is the flight recorder served at /debug/scale/events.
	Events *eventlog.Log
	// Live reports process liveness for /healthz (nil → always live).
	Live func() bool
	// Ready reports readiness for /readyz with a human-readable reason
	// when not ready (nil → ready whenever live).
	Ready func() (bool, string)
	// Mounts register additional endpoints on the mux — the history
	// collector, SLO tracker and model feed live in packages that
	// import obs, so they attach themselves here rather than being
	// linked in unconditionally.
	Mounts []func(*http.ServeMux)
}

// NewHandler builds the exposition mux with just metrics and spans —
// the pre-flight-recorder surface. Daemons wanting health endpoints,
// the event log or mounted collectors use NewHandlerConfig.
func NewHandler(reg *Registry, tr *Tracer) *http.ServeMux {
	return NewHandlerConfig(HandlerConfig{Registry: reg, Tracer: tr})
}

// NewHandlerConfig builds the exposition mux:
//
//	/metrics              Prometheus text format
//	/debug/scale          JSON: metric snapshot + per-(proc,stage)
//	                      span summaries + span/event log state
//	/debug/scale/spans    recent spans as JSONL
//	/debug/scale/events   flight-recorder events as JSONL (?since=seq)
//	/healthz              liveness  (200 ok / 503)
//	/readyz               readiness (200 ready / 503 + reason)
//	/debug/pprof/*        stdlib profiling endpoints
//
// plus whatever cfg.Mounts attach (/debug/scale/history, /slo, /model).
func NewHandlerConfig(cfg HandlerConfig) *http.ServeMux {
	reg, tr := cfg.Registry, cfg.Tracer
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/scale", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var body debugScale
		if reg != nil {
			snap := reg.Snapshot()
			body.Metrics = &snap
		}
		if tr != nil {
			body.Node = tr.Node()
			body.Spans = tr.Summaries()
			body.ActiveSpans = tr.ActiveCount()
			if l := tr.Log(); l != nil {
				body.SpanLog = &spanLogState{
					Retained: l.Len(),
					Total:    l.Total(),
					Dropped:  l.Dropped(),
				}
			}
		}
		if cfg.Events != nil {
			body.EventLog = &spanLogState{
				Retained: cfg.Events.Len(),
				Total:    cfg.Events.Total(),
				Dropped:  cfg.Events.Dropped(),
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&body)
	})
	mux.HandleFunc("/debug/scale/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr != nil && tr.Log() != nil {
			_ = tr.Log().WriteJSONL(w)
		}
	})
	mux.HandleFunc("/debug/scale/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if cfg.Events == nil {
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			since, _ = strconv.ParseUint(s, 10, 64)
		}
		_ = cfg.Events.WriteJSONL(w, since)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Live != nil && !cfg.Live() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Live != nil && !cfg.Live() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		if cfg.Ready != nil {
			if ok, reason := cfg.Ready(); !ok {
				if reason == "" {
					reason = "not ready"
				}
				http.Error(w, reason, http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, mount := range cfg.Mounts {
		if mount != nil {
			mount(mux)
		}
	}
	return mux
}

type debugScale struct {
	Node        string         `json:"node,omitempty"`
	Metrics     *Snapshot      `json:"metrics,omitempty"`
	Spans       []StageSummary `json:"spans,omitempty"`
	ActiveSpans int            `json:"active_spans"`
	SpanLog     *spanLogState  `json:"span_log,omitempty"`
	EventLog    *spanLogState  `json:"event_log,omitempty"`
}

type spanLogState struct {
	Retained int    `json:"retained"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`
}

// Server is a running exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition server on addr (":0" picks a free
// port; use Addr to discover it).
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	return ServeConfig(addr, HandlerConfig{Registry: reg, Tracer: tr})
}

// ServeConfig starts the exposition server for the full handler
// configuration (health endpoints, event log, mounted collectors).
func ServeConfig(addr string, cfg HandlerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: NewHandlerConfig(cfg), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
