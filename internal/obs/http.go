package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// EnableContentionProfiling turns on the runtime's mutex and block
// profilers, feeding /debug/pprof/mutex and /debug/pprof/block.
// mutexFraction samples 1/n of contended mutex events (0 disables);
// blockRateNS samples one blocking event per n nanoseconds blocked
// (0 disables). Both profilers cost on the sampled paths, so daemons
// gate them behind explicit flags rather than defaulting on.
func EnableContentionProfiling(mutexFraction, blockRateNS int) {
	runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNS)
}

// NewHandler builds the exposition mux:
//
//	/metrics       Prometheus text format
//	/debug/scale   JSON: metric snapshot + per-(proc,stage) span
//	               summaries + span-log state
//	/debug/scale/spans  recent spans as JSONL
//	/debug/pprof/* stdlib profiling endpoints
//
// reg and tr may each be nil; the corresponding sections are omitted.
func NewHandler(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/scale", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var body debugScale
		if reg != nil {
			snap := reg.Snapshot()
			body.Metrics = &snap
		}
		if tr != nil {
			body.Node = tr.Node()
			body.Spans = tr.Summaries()
			body.ActiveSpans = tr.ActiveCount()
			if l := tr.Log(); l != nil {
				body.SpanLog = &spanLogState{
					Retained: l.Len(),
					Total:    l.Total(),
					Dropped:  l.Dropped(),
				}
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&body)
	})
	mux.HandleFunc("/debug/scale/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr != nil && tr.Log() != nil {
			_ = tr.Log().WriteJSONL(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type debugScale struct {
	Node        string         `json:"node,omitempty"`
	Metrics     *Snapshot      `json:"metrics,omitempty"`
	Spans       []StageSummary `json:"spans,omitempty"`
	ActiveSpans int            `json:"active_spans"`
	SpanLog     *spanLogState  `json:"span_log,omitempty"`
}

type spanLogState struct {
	Retained int    `json:"retained"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`
}

// Server is a running exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition server on addr (":0" picks a free
// port; use Addr to discover it).
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: NewHandler(reg, tr), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
