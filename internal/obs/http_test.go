package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"scale/internal/obs/eventlog"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsAndDebug(t *testing.T) {
	ob := NewObserver("mmp-1", 128)
	ob.Reg.Counter(`mmp_requests_total{proc="attach"}`).Add(3)
	s := ob.Tracer.Begin(ob.Tracer.NewTraceID(), "attach", StageMMP)
	time.Sleep(time.Millisecond)
	s.End()

	srv, err := Serve("127.0.0.1:0", ob.Reg, ob.Tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`mmp_requests_total{proc="attach"} 3`,
		"# TYPE span_duration_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/scale")
	if code != 200 {
		t.Fatalf("/debug/scale status %d", code)
	}
	var dbg struct {
		Node  string `json:"node"`
		Spans []struct {
			Proc  string `json:"proc"`
			Stage string `json:"stage"`
		} `json:"spans"`
		SpanLog *struct {
			Retained int `json:"retained"`
		} `json:"span_log"`
	}
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatalf("debug/scale not JSON: %v\n%s", err, body)
	}
	if dbg.Node != "mmp-1" || len(dbg.Spans) == 0 || dbg.SpanLog == nil || dbg.SpanLog.Retained != 1 {
		t.Fatalf("debug/scale content wrong: %s", body)
	}

	code, body = get(t, base+"/debug/scale/spans")
	if code != 200 || !strings.Contains(body, `"stage":"mmp"`) {
		t.Fatalf("spans JSONL wrong (%d): %s", code, body)
	}

	// pprof index must be mounted.
	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index wrong (%d)", code)
	}
}

func TestServeHealthEventsAndMounts(t *testing.T) {
	ob := NewObserver("mlb-1", 0)
	ob.Events.Emitf(eventlog.TypeOverloadStart, "mlb-1", "", 50, "headroom=0.05")
	ob.Events.Emitf(eventlog.TypeOverloadStop, "mlb-1", "", 0, "")

	ready := false
	srv, err := ServeConfig("127.0.0.1:0", HandlerConfig{
		Registry: ob.Reg,
		Tracer:   ob.Tracer,
		Events:   ob.Events,
		Ready:    func() (bool, string) { return ready, "overloaded" },
		Mounts: []func(*http.ServeMux){
			func(mux *http.ServeMux) {
				mux.HandleFunc("/debug/scale/extra", func(w http.ResponseWriter, _ *http.Request) {
					io.WriteString(w, "mounted")
				})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != 503 || !strings.Contains(body, "overloaded") {
		t.Fatalf("/readyz while not ready = %d %q, want 503 with reason", code, body)
	}
	ready = true
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz while ready = %d, want 200", code)
	}

	code, body := get(t, base+"/debug/scale/events")
	if code != 200 {
		t.Fatalf("/debug/scale/events status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], eventlog.TypeOverloadStart) {
		t.Fatalf("events JSONL wrong: %q", body)
	}
	if _, body = get(t, base+"/debug/scale/events?since=1"); strings.Contains(body, eventlog.TypeOverloadStart) {
		t.Fatalf("since filter not applied: %q", body)
	}

	if code, body := get(t, base+"/debug/scale/extra"); code != 200 || body != "mounted" {
		t.Fatalf("mounted endpoint wrong (%d): %q", code, body)
	}

	// /debug/scale must report event-log state.
	_, body = get(t, base+"/debug/scale")
	var dbg struct {
		EventLog *struct {
			Retained int    `json:"retained"`
			Total    uint64 `json:"total"`
		} `json:"event_log"`
	}
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.EventLog == nil || dbg.EventLog.Total != 2 {
		t.Fatalf("event_log state missing from /debug/scale: %s", body)
	}
}
