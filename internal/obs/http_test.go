package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsAndDebug(t *testing.T) {
	ob := NewObserver("mmp-1", 128)
	ob.Reg.Counter(`mmp_requests_total{proc="attach"}`).Add(3)
	s := ob.Tracer.Begin(ob.Tracer.NewTraceID(), "attach", StageMMP)
	time.Sleep(time.Millisecond)
	s.End()

	srv, err := Serve("127.0.0.1:0", ob.Reg, ob.Tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`mmp_requests_total{proc="attach"} 3`,
		"# TYPE span_duration_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/scale")
	if code != 200 {
		t.Fatalf("/debug/scale status %d", code)
	}
	var dbg struct {
		Node  string `json:"node"`
		Spans []struct {
			Proc  string `json:"proc"`
			Stage string `json:"stage"`
		} `json:"spans"`
		SpanLog *struct {
			Retained int `json:"retained"`
		} `json:"span_log"`
	}
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatalf("debug/scale not JSON: %v\n%s", err, body)
	}
	if dbg.Node != "mmp-1" || len(dbg.Spans) == 0 || dbg.SpanLog == nil || dbg.SpanLog.Retained != 1 {
		t.Fatalf("debug/scale content wrong: %s", body)
	}

	code, body = get(t, base+"/debug/scale/spans")
	if code != 200 || !strings.Contains(body, `"stage":"mmp"`) {
		t.Fatalf("spans JSONL wrong (%d): %s", code, body)
	}

	// pprof index must be mounted.
	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index wrong (%d)", code)
	}
}
