// Package obs is the control plane's observability layer: a metrics
// registry (named counters, gauges and latency histograms), a span
// tracer that follows one control procedure across hops (eNB → MLB
// routing → MMP processing → S6a/S11 side-calls → state replication),
// and an HTTP exposition server publishing Prometheus-style text at
// /metrics, span summaries at /debug/scale and the stdlib pprof
// endpoints.
//
// The paper's headline results — 99th-percentile control-plane delay
// CDFs, per-VM CPU timelines, per-procedure signaling counts (Section
// 4 of PAPER.md) — are all observability artifacts; this package makes
// the live daemons produce them at runtime instead of recomputing them
// ad hoc inside each experiment.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"scale/internal/metrics"
)

// Counter is a monotonically increasing metric. The hot path is a
// single atomic add — no locks.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value metric (queue depth, utilization, ring size).
// Stores float64 bits atomically — no locks on the hot path.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the last value set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram wraps a metrics.Histogram with the unit scale used for
// exposition: recorded values are divided by Scale when rendered
// (record nanoseconds with Scale 1e9 to expose seconds).
type Histogram struct {
	H     *metrics.Histogram
	Scale float64
}

// Record adds one observation in the recording unit.
func (h *Histogram) Record(v int64) { h.H.Record(v) }

// HistogramStats is one histogram's summary in exposition units.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Stats summarizes the histogram in exposition units.
func (h *Histogram) Stats() HistogramStats {
	scale := h.Scale
	if scale == 0 {
		scale = 1
	}
	return HistogramStats{
		Count: h.H.Count(),
		Mean:  h.H.Mean() / scale,
		P50:   float64(h.H.Quantile(0.50)) / scale,
		P95:   float64(h.H.Quantile(0.95)) / scale,
		P99:   float64(h.H.Quantile(0.99)) / scale,
		Max:   float64(h.H.Max()) / scale,
	}
}

// Registry holds named metrics. Metric ids are Prometheus-style:
// a family name optionally followed by a label block, e.g.
//
//	mmp_requests_total{proc="attach"}
//
// Registration (Counter/Gauge/Histogram lookups) takes a lock and is
// idempotent; callers keep the returned pointer so the record path is
// lock-free. CounterFunc/GaugeFunc register read-on-scrape callbacks
// for components that already maintain their own counters.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Histogram
	counterFuncs map[string]func() uint64
	gaugeFuncs   map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		hists:        make(map[string]*Histogram),
		counterFuncs: make(map[string]func() uint64),
		gaugeFuncs:   make(map[string]func() float64),
	}
}

// Counter returns the counter registered under id, creating it on
// first use.
func (r *Registry) Counter(id string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns the gauge registered under id, creating it on first
// use.
func (r *Registry) Gauge(id string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns the histogram registered under id, creating it on
// first use with the given exposition scale (values recorded are
// divided by scale when exposed; use 1e9 for nanosecond recordings
// exposed as seconds).
func (r *Registry) Histogram(id string, scale float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[id]
	if !ok {
		h = &Histogram{H: metrics.NewHistogram(5), Scale: scale}
		r.hists[id] = h
	}
	return h
}

// CounterFunc registers a callback scraped as a counter — for
// components that already keep their own monotonic counts (engine
// Stats, transport frame counters).
func (r *Registry) CounterFunc(id string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[id] = fn
}

// GaugeFunc registers a callback scraped as a gauge.
func (r *Registry) GaugeFunc(id string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[id] = fn
}

// family extracts the metric family (the id up to the label block).
func family(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// labels returns the label block including braces, or "".
func labels(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[i:]
	}
	return ""
}

// withQuantile splices a quantile label into an id's label block.
func withQuantile(id string, q string) string {
	fam, lb := family(id), labels(id)
	if lb == "" {
		return fmt.Sprintf("%s{quantile=%q}", fam, q)
	}
	return fmt.Sprintf("%s,quantile=%q}", fam+lb[:len(lb)-1], q)
}

// Snapshot is a point-in-time copy of every registered metric, used by
// /debug/scale and the exporters.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot captures all metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for id, c := range r.counters {
		counters[id] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for id, g := range r.gauges {
		gauges[id] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for id, h := range r.hists {
		hists[id] = h
	}
	cfuncs := make(map[string]func() uint64, len(r.counterFuncs))
	for id, fn := range r.counterFuncs {
		cfuncs[id] = fn
	}
	gfuncs := make(map[string]func() float64, len(r.gaugeFuncs))
	for id, fn := range r.gaugeFuncs {
		gfuncs[id] = fn
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramStats),
	}
	for id, c := range counters {
		snap.Counters[id] = c.Value()
	}
	for id, fn := range cfuncs {
		snap.Counters[id] = fn()
	}
	for id, g := range gauges {
		snap.Gauges[id] = g.Value()
	}
	for id, fn := range gfuncs {
		snap.Gauges[id] = fn()
	}
	for id, h := range hists {
		snap.Histograms[id] = h.Stats()
	}
	return snap
}

// ScalarSnapshot captures only counters and gauges (including the
// registered callbacks). This is the history collector's per-tick
// sampling path: unlike Snapshot it never computes histogram
// statistics, so a tick costs two map walks plus the callbacks.
// Callbacks run outside the registry lock — they may take their own.
func (r *Registry) ScalarSnapshot() (counters map[string]uint64, gauges map[string]float64) {
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.counters))
	for id, c := range r.counters {
		cs[id] = c
	}
	gs := make(map[string]*Gauge, len(r.gauges))
	for id, g := range r.gauges {
		gs[id] = g
	}
	cfuncs := make(map[string]func() uint64, len(r.counterFuncs))
	for id, fn := range r.counterFuncs {
		cfuncs[id] = fn
	}
	gfuncs := make(map[string]func() float64, len(r.gaugeFuncs))
	for id, fn := range r.gaugeFuncs {
		gfuncs[id] = fn
	}
	r.mu.Unlock()

	counters = make(map[string]uint64, len(cs)+len(cfuncs))
	for id, c := range cs {
		counters[id] = c.Value()
	}
	for id, fn := range cfuncs {
		counters[id] = fn()
	}
	gauges = make(map[string]float64, len(gs)+len(gfuncs))
	for id, g := range gs {
		gauges[id] = g.Value()
	}
	for id, fn := range gfuncs {
		gauges[id] = fn()
	}
	return counters, gauges
}

// ForEachHistogram visits every registered histogram. fn runs outside
// the registry lock, so it may take the histogram's own lock (e.g. via
// Snapshot) without ordering concerns.
func (r *Registry) ForEachHistogram(fn func(id string, h *Histogram)) {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for id, h := range r.hists {
		hists[id] = h
	}
	r.mu.Unlock()
	for id, h := range hists {
		fn(id, h)
	}
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format: counters and gauges as-is, histograms as
// summaries with quantile labels plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	typed := make(map[string]string) // family → TYPE
	var lines []string
	add := func(fam, typ, line string) {
		if _, ok := typed[fam]; !ok {
			typed[fam] = typ
		}
		lines = append(lines, line)
	}
	for id, v := range snap.Counters {
		add(family(id), "counter", fmt.Sprintf("%s %d", id, v))
	}
	for id, v := range snap.Gauges {
		add(family(id), "gauge", fmt.Sprintf("%s %g", id, v))
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for id, h := range r.hists {
		hists[id] = h
	}
	r.mu.Unlock()
	for id, h := range hists {
		scale := h.Scale
		if scale == 0 {
			scale = 1
		}
		fam := family(id)
		st := snap.Histograms[id]
		add(fam, "summary", fmt.Sprintf("%s %g", withQuantile(id, "0.5"), st.P50))
		add(fam, "summary", fmt.Sprintf("%s %g", withQuantile(id, "0.95"), st.P95))
		add(fam, "summary", fmt.Sprintf("%s %g", withQuantile(id, "0.99"), st.P99))
		sum := h.H.Mean() * float64(h.H.Count()) / scale
		add(fam, "summary", fmt.Sprintf("%s_sum%s %g", fam, labels(id), sum))
		add(fam, "summary", fmt.Sprintf("%s_count%s %d", fam, labels(id), st.Count))
	}

	sort.Strings(lines)
	seen := make(map[string]bool)
	for _, line := range lines {
		fam := family(line[:strings.IndexByte(line+" ", ' ')])
		// _sum/_count lines belong to their parent summary family.
		base := strings.TrimSuffix(strings.TrimSuffix(fam, "_count"), "_sum")
		if typ, ok := typed[base]; ok && !seen[base] {
			seen[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
