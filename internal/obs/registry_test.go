package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(`frames_total{dir="in"}`)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter(`frames_total{dir="in"}`) != c {
		t.Fatal("counter registration not idempotent")
	}

	g := reg.Gauge("queue_depth")
	g.Set(17.5)
	if got := g.Value(); got != 17.5 {
		t.Fatalf("gauge = %g, want 17.5", got)
	}

	h := reg.Histogram(`lat_seconds{proc="attach"}`, 1e9)
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1e6) // 1..1000 ms in ns
	}
	st := h.Stats()
	if st.Count != 1000 {
		t.Fatalf("hist count = %d", st.Count)
	}
	if st.P99 < 0.9 || st.P99 > 1.1 {
		t.Fatalf("p99 = %g s, want ~0.99 s", st.P99)
	}
}

func TestCounterFuncAndGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	var n uint64 = 42
	reg.CounterFunc("external_total", func() uint64 { return n })
	reg.GaugeFunc("external_gauge", func() float64 { return 3.25 })
	snap := reg.Snapshot()
	if snap.Counters["external_total"] != 42 {
		t.Fatalf("counter func = %d", snap.Counters["external_total"])
	}
	if snap.Gauges["external_gauge"] != 3.25 {
		t.Fatalf("gauge func = %g", snap.Gauges["external_gauge"])
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`mmp_requests_total{proc="attach"}`).Add(7)
	reg.Counter(`mmp_requests_total{proc="tau"}`).Add(3)
	reg.Gauge("ring_size").Set(4)
	h := reg.Histogram(`mmp_latency_seconds{proc="attach"}`, 1e9)
	h.Record(2e6)
	h.Record(3e6)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mmp_requests_total counter",
		`mmp_requests_total{proc="attach"} 7`,
		`mmp_requests_total{proc="tau"} 3`,
		"# TYPE ring_size gauge",
		"ring_size 4",
		"# TYPE mmp_latency_seconds summary",
		`quantile="0.99"`,
		`mmp_latency_seconds_count{proc="attach"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE lines must be unique per family.
	if n := strings.Count(out, "# TYPE mmp_requests_total counter"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

// TestRegistryConcurrent hammers registration and recording from many
// goroutines; run under -race this is the registry's thread-safety
// audit.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared_total")
			g := reg.Gauge("shared_gauge")
			h := reg.Histogram("shared_seconds", 1e9)
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Record(int64(j + 1))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}
