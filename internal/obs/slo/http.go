package slo

import (
	"encoding/json"
	"net/http"
)

// Path is where the tracker mounts its JSON view.
const Path = "/debug/scale/slo"

// body is the JSON shape served at /debug/scale/slo.
type body struct {
	Healthy bool    `json:"healthy"`
	SLOs    []State `json:"slos"`
}

// Mount registers the SLO endpoint on mux.
func (t *Tracker) Mount(mux *http.ServeMux) {
	mux.HandleFunc(Path, func(w http.ResponseWriter, _ *http.Request) {
		states := t.States()
		healthy := true
		for _, s := range states {
			if !s.Healthy {
				healthy = false
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body{Healthy: healthy, SLOs: states})
	})
}
