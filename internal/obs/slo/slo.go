// Package slo evaluates declarative service-level objectives over the
// history collector's windows. Two objective kinds cover the control
// plane's contract: latency objectives ("attach p99 < 50ms") over a
// histogram's windowed quantile, and ratio objectives ("attach reject
// ratio < 5%") over a pair of counters.
//
// Detection is multi-window burn-rate in the SRE-workbook sense: an
// objective breaches only when BOTH a short window (fast signal,
// noisy) and a long window (slow signal, stable) exceed the objective
// scaled by BurnFactor — a transient blip trips neither, a sustained
// storm trips both within seconds. A breach flips the objective's
// slo_healthy gauge, bumps slo_breaches_total, and emits a flight-
// recorder event; recovery of the short window clears it.
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"scale/internal/obs"
	"scale/internal/obs/eventlog"
	"scale/internal/obs/timeseries"
)

// Kind discriminates objective flavors.
type Kind string

const (
	KindLatency Kind = "latency"
	KindRatio   Kind = "ratio"
)

// Default evaluation windows.
const (
	DefaultShortWindow = 10 * time.Second
	DefaultLongWindow  = time.Minute
)

// Objective is one declarative target.
type Objective struct {
	Name string
	Kind Kind

	// Latency objectives: the Quantile of Metric (a histogram id) must
	// stay below Threshold (exposition units, e.g. seconds).
	Metric    string
	Quantile  float64
	Threshold float64

	// Ratio objectives: Bad/Total (counter ids) must stay below
	// MaxRatio. A window with no Total increase is treated as healthy.
	Bad      string
	Total    string
	MaxRatio float64

	// ShortWindow/LongWindow override the evaluation windows.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// BurnFactor scales the objective before comparison (default 1.0:
	// any sustained violation breaches; 2.0 tolerates up to 2x the
	// objective before paging).
	BurnFactor float64
	// MinCount ignores windows with fewer observations (latency) or
	// less Total increase (ratio) than this, defaulting to 1 — one
	// slow sample shouldn't breach an SLO.
	MinCount uint64
}

func (o Objective) shortWindow() time.Duration {
	if o.ShortWindow > 0 {
		return o.ShortWindow
	}
	return DefaultShortWindow
}

func (o Objective) longWindow() time.Duration {
	if o.LongWindow > 0 {
		return o.LongWindow
	}
	return DefaultLongWindow
}

func (o Objective) burnFactor() float64 {
	if o.BurnFactor > 0 {
		return o.BurnFactor
	}
	return 1.0
}

func (o Objective) minCount() uint64 {
	if o.MinCount > 0 {
		return o.MinCount
	}
	return 1
}

// objective reports the threshold being enforced (Threshold or
// MaxRatio by kind).
func (o Objective) objective() float64 {
	if o.Kind == KindLatency {
		return o.Threshold
	}
	return o.MaxRatio
}

// State is one objective's last evaluation.
type State struct {
	Name      string  `json:"name"`
	Kind      Kind    `json:"kind"`
	Objective float64 `json:"objective"`
	Healthy   bool    `json:"healthy"`
	// Short/Long are the measured values over each window; ShortOK/
	// LongOK report whether the window had enough data to measure.
	Short   float64 `json:"short"`
	ShortOK bool    `json:"short_ok"`
	Long    float64 `json:"long"`
	LongOK  bool    `json:"long_ok"`
	// Breaches counts breach transitions since start; SinceUnixMS is
	// when the current health state was entered (0 until the first
	// evaluation).
	Breaches    uint64 `json:"breaches"`
	SinceUnixMS int64  `json:"since_unix_ms,omitempty"`
}

// Config parameterizes a Tracker.
type Config struct {
	Collector  *timeseries.Collector
	Objectives []Objective
	// Registry receives slo_healthy / slo_breaches_total metrics
	// (nil skips metric registration).
	Registry *obs.Registry
	// Events receives slo-breach / slo-clear events (nil-safe).
	Events *eventlog.Log
	// Node stamps emitted events.
	Node string
	// Every is the evaluation cadence for Start (default 1s).
	Every time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
}

type objState struct {
	obj      Objective
	healthy  bool
	everEval bool
	since    time.Time
	breaches uint64
	last     State
	gauge    *obs.Gauge
	counter  *obs.Counter
}

// Tracker evaluates objectives against a collector.
type Tracker struct {
	cfg  Config
	mu   sync.Mutex
	objs []*objState
	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a tracker. Objectives start healthy.
func New(cfg Config) *Tracker {
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Tracker{cfg: cfg}
	for _, o := range cfg.Objectives {
		st := &objState{obj: o, healthy: true}
		if cfg.Registry != nil {
			//scale:allow metrichygiene bounded by the configured objective list
			st.gauge = cfg.Registry.Gauge(fmt.Sprintf("slo_healthy{slo=%q}", o.Name))
			st.gauge.Set(1)
			//scale:allow metrichygiene bounded by the configured objective list
			st.counter = cfg.Registry.Counter(fmt.Sprintf("slo_breaches_total{slo=%q}", o.Name))
		}
		t.objs = append(t.objs, st)
	}
	return t
}

// Start launches periodic evaluation; no-op when already running.
func (t *Tracker) Start() {
	t.mu.Lock()
	if t.done != nil {
		t.mu.Unlock()
		return
	}
	t.done = make(chan struct{})
	done := t.done
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(t.cfg.Every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.EvaluateOnce()
			}
		}
	}()
}

// Stop halts periodic evaluation.
func (t *Tracker) Stop() {
	t.mu.Lock()
	done := t.done
	t.done = nil
	t.mu.Unlock()
	if done != nil {
		close(done)
		t.wg.Wait()
	}
}

// measure evaluates one window of one objective: the measured value,
// whether enough data was present, and whether the window violates the
// burn-scaled objective.
func (t *Tracker) measure(o Objective, window time.Duration) (value float64, ok, violated bool) {
	limit := o.objective() * o.burnFactor()
	switch o.Kind {
	case KindLatency:
		hw, found := t.cfg.Collector.WindowHist(o.Metric, window)
		if !found || hw.Count < o.minCount() {
			return 0, false, false
		}
		q, found := t.cfg.Collector.WindowQuantile(o.Metric, window, o.Quantile)
		if !found {
			return 0, false, false
		}
		return q, true, q > limit
	case KindRatio:
		total, _, found := t.cfg.Collector.CounterDelta(o.Total, window)
		if !found || total < float64(o.minCount()) {
			return 0, false, false
		}
		bad, _, _ := t.cfg.Collector.CounterDelta(o.Bad, window)
		ratio := bad / total
		return ratio, true, ratio > limit
	}
	return 0, false, false
}

// EvaluateOnce evaluates every objective against the collector's
// current history. Exported so tests and one-shot tools can drive the
// tracker deterministically.
func (t *Tracker) EvaluateOnce() {
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.objs {
		o := st.obj
		shortV, shortOK, shortViol := t.measure(o, o.shortWindow())
		longV, longOK, longViol := t.measure(o, o.longWindow())

		if !st.everEval {
			st.everEval = true
			st.since = now
		}
		switch {
		case st.healthy && shortOK && longOK && shortViol && longViol:
			// Breach: both windows sustain the violation.
			st.healthy = false
			st.since = now
			st.breaches++
			if st.gauge != nil {
				st.gauge.Set(0)
			}
			if st.counter != nil {
				st.counter.Inc()
			}
			t.cfg.Events.Emit(eventlog.Event{
				Type: eventlog.TypeSLOBreach, Node: t.cfg.Node, Subject: o.Name,
				Value:  shortV,
				Detail: fmt.Sprintf("short=%g long=%g objective=%g", shortV, longV, o.objective()),
			})
		case !st.healthy && (!shortOK || !shortViol):
			// Clear: the fast window is back within the objective (or
			// has gone quiet — no data means no ongoing violation).
			st.healthy = true
			st.since = now
			if st.gauge != nil {
				st.gauge.Set(1)
			}
			t.cfg.Events.Emit(eventlog.Event{
				Type: eventlog.TypeSLOClear, Node: t.cfg.Node, Subject: o.Name,
				Value: shortV,
			})
		}
		st.last = State{
			Name:        o.Name,
			Kind:        o.Kind,
			Objective:   o.objective(),
			Healthy:     st.healthy,
			Short:       shortV,
			ShortOK:     shortOK,
			Long:        longV,
			LongOK:      longOK,
			Breaches:    st.breaches,
			SinceUnixMS: st.since.UnixMilli(),
		}
	}
}

// States reports every objective's last evaluation.
func (t *Tracker) States() []State {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]State, 0, len(t.objs))
	for _, st := range t.objs {
		s := st.last
		if !st.everEval {
			s = State{Name: st.obj.Name, Kind: st.obj.Kind, Objective: st.obj.objective(), Healthy: true}
		}
		out = append(out, s)
	}
	return out
}

// Healthy reports whether every objective is currently healthy.
func (t *Tracker) Healthy() bool {
	for _, s := range t.States() {
		if !s.Healthy {
			return false
		}
	}
	return true
}

// Parse builds an Objective from its spec-string form:
//
//	name:p99(<histogram-id>)<50ms              latency
//	name:ratio(<bad-id>/<total-id>)<0.05       ratio
//
// with an optional @short,long window suffix, e.g.
//
//	shed:ratio(mlb_overload_shed_total{proc="attach"}/mlb_ingress_total{proc="attach"})<0.05@10s,1m
//
// Metric ids may contain label blocks; they may not contain '/' or
// '@', which is true of every id the registry produces.
func Parse(spec string) (Objective, error) {
	var o Objective
	rest := spec
	if i := strings.LastIndexByte(rest, '@'); i >= 0 {
		windows := rest[i+1:]
		rest = rest[:i]
		parts := strings.SplitN(windows, ",", 2)
		if len(parts) != 2 {
			return o, fmt.Errorf("slo %q: window suffix must be @short,long", spec)
		}
		var err error
		if o.ShortWindow, err = time.ParseDuration(parts[0]); err != nil {
			return o, fmt.Errorf("slo %q: bad short window: %w", spec, err)
		}
		if o.LongWindow, err = time.ParseDuration(parts[1]); err != nil {
			return o, fmt.Errorf("slo %q: bad long window: %w", spec, err)
		}
	}
	colon := strings.IndexByte(rest, ':')
	if colon <= 0 {
		return o, fmt.Errorf("slo %q: missing name:", spec)
	}
	o.Name = rest[:colon]
	rest = rest[colon+1:]

	open := strings.IndexByte(rest, '(')
	close_ := strings.LastIndex(rest, ")<")
	if open < 0 || close_ < open {
		return o, fmt.Errorf("slo %q: want kind(args)<threshold", spec)
	}
	kind, args, thr := rest[:open], rest[open+1:close_], rest[close_+2:]

	switch {
	case kind == "ratio":
		o.Kind = KindRatio
		slash := strings.IndexByte(args, '/')
		if slash <= 0 || slash == len(args)-1 {
			return o, fmt.Errorf("slo %q: ratio wants bad/total", spec)
		}
		o.Bad, o.Total = args[:slash], args[slash+1:]
		v, err := strconv.ParseFloat(thr, 64)
		if err != nil || v <= 0 {
			return o, fmt.Errorf("slo %q: bad ratio threshold %q", spec, thr)
		}
		o.MaxRatio = v
	case strings.HasPrefix(kind, "p"):
		o.Kind = KindLatency
		q, err := strconv.ParseFloat(kind[1:], 64)
		if err != nil || q <= 0 || q > 100 {
			return o, fmt.Errorf("slo %q: bad quantile %q", spec, kind)
		}
		if q > 1 {
			q /= 100 // p99 → 0.99
		}
		o.Quantile = q
		o.Metric = args
		d, err := time.ParseDuration(thr)
		if err != nil {
			return o, fmt.Errorf("slo %q: bad latency threshold %q (want a duration like 50ms)", spec, thr)
		}
		o.Threshold = d.Seconds()
	default:
		return o, fmt.Errorf("slo %q: unknown kind %q", spec, kind)
	}
	return o, nil
}

// ParseList parses a ';'-separated list of specs (ids contain commas,
// so ';' is the separator). Empty elements are skipped.
func ParseList(specs string) ([]Objective, error) {
	var out []Objective
	for _, s := range strings.Split(specs, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		o, err := Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
