package slo

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"scale/internal/obs"
	"scale/internal/obs/eventlog"
	"scale/internal/obs/timeseries"
)

// rig bundles a registry, manual-clock collector and tracker.
type rig struct {
	reg *obs.Registry
	col *timeseries.Collector
	trk *Tracker
	ev  *eventlog.Log
	t   time.Time
}

func newRig(objs ...Objective) *rig {
	r := &rig{reg: obs.NewRegistry(), ev: eventlog.New(64), t: time.Unix(1_700_000_000, 0)}
	now := func() time.Time { return r.t }
	r.col = timeseries.New(timeseries.Config{Registry: r.reg, Interval: time.Second, Retention: 256, Now: now})
	r.trk = New(Config{
		Collector:  r.col,
		Objectives: objs,
		Registry:   r.reg,
		Events:     r.ev,
		Node:       "test-node",
		Now:        now,
	})
	return r
}

// step advances time one second, samples, and evaluates.
func (r *rig) step() {
	r.col.SampleOnce()
	r.trk.EvaluateOnce()
	r.t = r.t.Add(time.Second)
}

func ratioObjective() Objective {
	return Objective{
		Name: "attach-rejects", Kind: KindRatio,
		Bad:         `shed_total{proc="attach"}`,
		Total:       `ingress_total{proc="attach"}`,
		MaxRatio:    0.05,
		ShortWindow: 3 * time.Second,
		LongWindow:  8 * time.Second,
		MinCount:    5,
	}
}

func TestRatioBreachAndClear(t *testing.T) {
	r := newRig(ratioObjective())
	bad := r.reg.Counter(`shed_total{proc="attach"}`)
	total := r.reg.Counter(`ingress_total{proc="attach"}`)

	// Healthy phase: 100/s arrivals, 1% shed.
	for i := 0; i < 10; i++ {
		total.Add(100)
		bad.Add(1)
		r.step()
	}
	if !r.trk.Healthy() {
		t.Fatalf("healthy traffic breached: %+v", r.trk.States())
	}

	// Storm: 50% shed. The short window (3s) violates quickly; the
	// long window (8s) follows once the storm has run long enough.
	var breachedAt int
	for i := 1; i <= 12; i++ {
		total.Add(100)
		bad.Add(50)
		r.step()
		if !r.trk.Healthy() && breachedAt == 0 {
			breachedAt = i
		}
	}
	if breachedAt == 0 {
		t.Fatalf("sustained 50%% shed never breached: %+v", r.trk.States())
	}
	// A 10x burn trips even the long window within a couple of seconds.
	if breachedAt > 3 {
		t.Fatalf("breach took %d storm seconds, want fast detection at 10x burn", breachedAt)
	}
	st := r.trk.States()[0]
	if st.Healthy || st.Breaches != 1 || st.Short < 0.4 {
		t.Fatalf("breach state wrong: %+v", st)
	}
	if g := r.reg.Gauge(`slo_healthy{slo="attach-rejects"}`).Value(); g != 0 {
		t.Fatalf("slo_healthy gauge = %g during breach, want 0", g)
	}
	if c := r.reg.Counter(`slo_breaches_total{slo="attach-rejects"}`).Value(); c != 1 {
		t.Fatalf("slo_breaches_total = %d, want 1", c)
	}

	// Recovery: shedding stops, traffic continues. The short window
	// drains in ~3s and the objective clears even though the long
	// window still remembers the storm.
	var clearedAt int
	for i := 1; i <= 6; i++ {
		total.Add(100)
		r.step()
		if r.trk.Healthy() {
			clearedAt = i
			break
		}
	}
	if clearedAt == 0 {
		t.Fatalf("objective never cleared after recovery: %+v", r.trk.States())
	}
	if g := r.reg.Gauge(`slo_healthy{slo="attach-rejects"}`).Value(); g != 1 {
		t.Fatal("slo_healthy gauge not restored")
	}

	// Event order: breach then clear, stamped with node and name.
	evs := r.ev.Events(0)
	if len(evs) != 2 || evs[0].Type != eventlog.TypeSLOBreach || evs[1].Type != eventlog.TypeSLOClear {
		t.Fatalf("events = %+v, want breach then clear", evs)
	}
	if evs[0].Node != "test-node" || evs[0].Subject != "attach-rejects" {
		t.Fatalf("breach event fields wrong: %+v", evs[0])
	}
}

func TestRatioQuietWindowStaysHealthy(t *testing.T) {
	r := newRig(ratioObjective())
	// No traffic at all: MinCount filters the empty windows; no breach.
	for i := 0; i < 10; i++ {
		r.step()
	}
	if !r.trk.Healthy() {
		t.Fatal("idle tracker breached")
	}
	st := r.trk.States()[0]
	if st.ShortOK || st.LongOK {
		t.Fatalf("idle windows reported data: %+v", st)
	}
}

func TestTransientBlipDoesNotBreach(t *testing.T) {
	r := newRig(ratioObjective())
	bad := r.reg.Counter(`shed_total{proc="attach"}`)
	total := r.reg.Counter(`ingress_total{proc="attach"}`)
	// 20 healthy seconds, one bad second, healthy again: the long
	// window (8s at 50%→ one second of 50% ≈ 6% avg) may flicker, but
	// a single-second blip must not trip both windows simultaneously
	// once the short window has moved past it.
	for i := 0; i < 10; i++ {
		total.Add(100)
		r.step()
	}
	total.Add(100)
	bad.Add(8) // 8% for one second
	r.step()
	for i := 0; i < 10; i++ {
		total.Add(100)
		r.step()
	}
	if !r.trk.Healthy() {
		t.Fatalf("one-second 8%% blip breached the SLO: %+v", r.trk.States())
	}
	if n := r.trk.States()[0].Breaches; n != 0 {
		t.Fatalf("blip recorded %d breaches", n)
	}
}

func TestLatencyObjective(t *testing.T) {
	obj := Objective{
		Name: "attach-p99", Kind: KindLatency,
		Metric:      `span_duration_seconds{proc="attach",stage="mmp"}`,
		Quantile:    0.99,
		Threshold:   0.050, // 50ms
		ShortWindow: 3 * time.Second,
		LongWindow:  8 * time.Second,
		MinCount:    5,
	}
	r := newRig(obj)
	h := r.reg.Histogram(`span_duration_seconds{proc="attach",stage="mmp"}`, 1e9)

	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			h.Record(int64(5 * time.Millisecond))
		}
		r.step()
	}
	if !r.trk.Healthy() {
		t.Fatalf("5ms latencies breached a 50ms objective: %+v", r.trk.States())
	}

	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			h.Record(int64(200 * time.Millisecond))
		}
		r.step()
	}
	st := r.trk.States()[0]
	if st.Healthy {
		t.Fatalf("200ms latencies did not breach: %+v", st)
	}
	if math.Abs(st.Short-0.2) > 0.02 {
		t.Fatalf("short-window p99 = %g, want ≈0.2", st.Short)
	}

	// Latency recovers; objective clears when the short window drains.
	cleared := false
	for i := 0; i < 6; i++ {
		for j := 0; j < 20; j++ {
			h.Record(int64(2 * time.Millisecond))
		}
		r.step()
		if r.trk.Healthy() {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatalf("latency objective never cleared: %+v", r.trk.States())
	}
}

func TestParse(t *testing.T) {
	o, err := Parse(`shed:ratio(mlb_overload_shed_total{proc="attach"}/mlb_ingress_total{proc="attach"})<0.05@10s,1m`)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "shed" || o.Kind != KindRatio || o.MaxRatio != 0.05 {
		t.Fatalf("parsed ratio wrong: %+v", o)
	}
	if o.Bad != `mlb_overload_shed_total{proc="attach"}` || o.Total != `mlb_ingress_total{proc="attach"}` {
		t.Fatalf("parsed ids wrong: %+v", o)
	}
	if o.ShortWindow != 10*time.Second || o.LongWindow != time.Minute {
		t.Fatalf("parsed windows wrong: %+v", o)
	}

	o, err = Parse(`attach-p99:p99(span_duration_seconds{proc="attach",stage="mmp"})<50ms`)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindLatency || o.Quantile != 0.99 || o.Threshold != 0.05 {
		t.Fatalf("parsed latency wrong: %+v", o)
	}
	if o.ShortWindow != 0 || o.LongWindow != 0 {
		t.Fatalf("windows should default to zero: %+v", o)
	}

	if o, err = Parse(`mid:p50(h)<1s`); err != nil || o.Quantile != 0.5 {
		t.Fatalf("p50 parse: %+v %v", o, err)
	}

	for _, bad := range []string{
		"",
		"noname",
		"x:ratio(a)<0.05",        // missing /total
		"x:ratio(a/b)<-1",        // bad threshold
		"x:p99(h)<oops",          // bad duration
		"x:pzz(h)<50ms",          // bad quantile
		"x:widgets(h)<50ms",      // unknown kind
		"x:ratio(a/b)<0.05@10s",  // malformed window suffix
		"x:ratio(a/b)<0.05@a,1m", // bad short window
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) did not fail", bad)
		}
	}
}

func TestParseList(t *testing.T) {
	objs, err := ParseList(` a:p99(h1)<10ms ; b:ratio(x/y)<0.1 ; `)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Name != "a" || objs[1].Name != "b" {
		t.Fatalf("ParseList = %+v", objs)
	}
	if _, err := ParseList("good:p99(h)<1ms;bad"); err == nil {
		t.Fatal("ParseList swallowed a bad spec")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := newRig(ratioObjective())
	r.step()
	mux := http.NewServeMux()
	r.trk.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + Path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Healthy bool    `json:"healthy"`
		SLOs    []State `json:"slos"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Healthy || len(got.SLOs) != 1 || got.SLOs[0].Name != "attach-rejects" {
		t.Fatalf("slo endpoint body wrong: %+v", got)
	}
}
