package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scale/internal/obs/eventlog"
)

// Stage names for the hops a control procedure crosses. The simulator
// additionally uses net/queue/service to decompose one hop.
const (
	StageENB       = "enb"
	StageMLBRoute  = "mlb-route"
	StageMMP       = "mmp"
	StageS6a       = "s6a"
	StageS11       = "s11"
	StageReplicate = "replicate"
	StageFailover  = "failover"
	StageOverload  = "overload"

	StageNet     = "net"
	StageQueue   = "queue"
	StageService = "service"
)

// Span is one recorded stage of a traced control procedure. Durations
// are measured with a single node-local monotonic clock (start and end
// read on the same node), so they are immune to wall-clock skew
// between hosts; only the trace id crosses the wire.
type Span struct {
	// Trace is the procedure's end-to-end trace id, rendered as hex.
	// Zero means the span was recorded outside any trace.
	Trace uint64 `json:"-"`
	// TraceHex is the JSONL rendering of Trace.
	TraceHex string `json:"trace"`
	Proc     string `json:"proc"`
	Stage    string `json:"stage"`
	Node     string `json:"node"`
	// StartNS is the span start in nanoseconds of node-local monotonic
	// time since the tracer was created.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Orphan marks spans force-closed by SweepOrphans: the procedure
	// never completed on this node (e.g. the MMP died mid-procedure).
	Orphan bool `json:"orphan,omitempty"`
}

// SpanLog is a bounded ring of recent spans. When full, the oldest
// entries are overwritten and counted as dropped — memory stays
// bounded under overflow, and /debug/scale reports the truncation.
type SpanLog struct {
	mu      sync.Mutex
	cap     int
	buf     []Span
	next    int
	total   uint64
	dropped uint64
}

// NewSpanLog creates a log retaining at most capacity spans.
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &SpanLog{cap: capacity}
}

// Append records one span, evicting the oldest when full.
func (l *SpanLog) Append(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, s)
		return
	}
	l.buf[l.next] = s
	l.next = (l.next + 1) % l.cap
	l.dropped++
}

// Spans returns the retained spans, oldest first.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Len reports the number of retained spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total reports how many spans were ever appended.
func (l *SpanLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped reports how many spans were evicted by overflow.
func (l *SpanLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// WriteJSONL writes the retained spans as one JSON object per line —
// the span-log export schema documented in the README.
func (l *SpanLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range l.Spans() {
		if err := enc.Encode(&s); err != nil {
			return err
		}
	}
	return nil
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Node names this tracer's host in exported spans (e.g. "mmp-3").
	Node string
	// Registry receives per-(proc,stage) duration histograms under
	// span_duration_seconds; nil disables histogram recording.
	Registry *Registry
	// SpanLogSize bounds the retained span log; 0 disables the log
	// (histograms still record), negative uses the default (1024).
	SpanLogSize int
	// Clock returns node-local monotonic time; nil uses time.Since of
	// the tracer's creation instant, which Go backs with the monotonic
	// clock (immune to wall-clock adjustment). Tests inject a manual
	// clock.
	Clock func() time.Duration
}

// Tracer follows control procedures across stages: Begin/End bracket a
// stage on one node, Observe records an externally measured duration.
// Durations land in per-(procedure, stage) histograms and optionally
// in a bounded span log. Safe for concurrent use.
type Tracer struct {
	node  string
	reg   *Registry
	clock func() time.Duration
	log   *SpanLog

	idBase  uint64
	idCtr   atomic.Uint64
	spanCtr atomic.Uint64

	mu     sync.Mutex
	active map[uint64]*ActiveSpan

	histMu sync.RWMutex
	hists  map[string]*Histogram

	orphans *Counter
}

// NewTracer creates a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Node == "" {
		cfg.Node = "node"
	}
	clock := cfg.Clock
	if clock == nil {
		epoch := time.Now()
		clock = func() time.Duration { return time.Since(epoch) }
	}
	var slog *SpanLog
	if cfg.SpanLogSize != 0 {
		size := cfg.SpanLogSize
		if size < 0 {
			size = 0 // NewSpanLog defaults
		}
		slog = NewSpanLog(size)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", cfg.Node, time.Now().UnixNano())
	base := h.Sum64()
	if base == 0 {
		base = 1
	}
	t := &Tracer{
		node:   cfg.Node,
		reg:    cfg.Registry,
		clock:  clock,
		log:    slog,
		idBase: base,
		active: make(map[uint64]*ActiveSpan),
		hists:  make(map[string]*Histogram),
	}
	if cfg.Registry != nil {
		t.orphans = cfg.Registry.Counter(`span_orphans_total{node="` + cfg.Node + `"}`)
	}
	return t
}

// Node reports the tracer's node name.
func (t *Tracer) Node() string { return t.node }

// Log returns the bounded span log, or nil if disabled.
func (t *Tracer) Log() *SpanLog { return t.log }

// NewTraceID mints a process-unique, non-zero trace id. Uniqueness
// across nodes comes from mixing a per-tracer base (node name +
// startup instant) with a local counter.
func (t *Tracer) NewTraceID() uint64 {
	for {
		id := t.idBase ^ (t.idCtr.Add(1) * 0x9E3779B97F4A7C15)
		if id != 0 {
			return id
		}
	}
}

// ActiveSpan is one in-flight stage measurement.
type ActiveSpan struct {
	t     *Tracer
	id    uint64
	trace uint64
	proc  string
	stage string
	start time.Duration
	done  atomic.Bool
}

// Begin opens a span for (trace, proc, stage). trace may be zero for
// untraced measurements. The caller must End it (or the tracer's
// SweepOrphans eventually will).
func (t *Tracer) Begin(trace uint64, proc, stage string) *ActiveSpan {
	s := &ActiveSpan{
		t:     t,
		id:    t.spanCtr.Add(1),
		trace: trace,
		proc:  proc,
		stage: stage,
		start: t.clock(),
	}
	t.mu.Lock()
	t.active[s.id] = s
	t.mu.Unlock()
	return s
}

// End closes the span, recording its duration. Safe to call once;
// later calls (e.g. after an orphan sweep already closed it) are
// no-ops.
func (s *ActiveSpan) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.t.mu.Lock()
	delete(s.t.active, s.id)
	s.t.mu.Unlock()
	s.t.record(s.trace, s.proc, s.stage, s.start, s.t.clock()-s.start, false)
}

// Trace reports the span's trace id.
func (s *ActiveSpan) Trace() uint64 { return s.trace }

// Observe records an externally measured stage duration (the simulator
// measures in virtual time and feeds durations here).
func (t *Tracer) Observe(trace uint64, proc, stage string, d time.Duration) {
	t.record(trace, proc, stage, t.clock()-d, d, false)
}

// SweepOrphans force-closes active spans begun more than maxAge ago,
// marking them orphaned — the MMP died mid-procedure, or a peer never
// answered. Returns the number of spans closed.
func (t *Tracer) SweepOrphans(maxAge time.Duration) int {
	cutoff := t.clock() - maxAge
	t.mu.Lock()
	var stale []*ActiveSpan
	for _, s := range t.active {
		if s.start <= cutoff {
			stale = append(stale, s)
		}
	}
	t.mu.Unlock()

	n := 0
	for _, s := range stale {
		if !s.done.CompareAndSwap(false, true) {
			continue // raced with End
		}
		t.mu.Lock()
		delete(t.active, s.id)
		t.mu.Unlock()
		t.record(s.trace, s.proc, s.stage, s.start, t.clock()-s.start, true)
		if t.orphans != nil {
			t.orphans.Inc()
		}
		n++
	}
	return n
}

// ActiveCount reports the number of in-flight spans.
func (t *Tracer) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

func (t *Tracer) record(trace uint64, proc, stage string, start, dur time.Duration, orphan bool) {
	if dur < 0 {
		dur = 0
	}
	if t.reg != nil {
		t.histFor(proc, stage).Record(int64(dur))
	}
	if t.log != nil {
		t.log.Append(Span{
			Trace:    trace,
			TraceHex: fmt.Sprintf("%016x", trace),
			Proc:     proc,
			Stage:    stage,
			Node:     t.node,
			StartNS:  int64(start),
			DurNS:    int64(dur),
			Orphan:   orphan,
		})
	}
}

// histFor returns the (proc, stage) duration histogram, caching the
// registry lookup so the steady-state record path takes only an
// RLock.
func (t *Tracer) histFor(proc, stage string) *Histogram {
	key := proc + "\x00" + stage
	t.histMu.RLock()
	h, ok := t.hists[key]
	t.histMu.RUnlock()
	if ok {
		return h
	}
	id := fmt.Sprintf("span_duration_seconds{proc=%q,stage=%q}", proc, stage)
	//scale:allow metrichygiene lazy first-use registration, ids bounded by the (proc, stage) sets
	h = t.reg.Histogram(id, 1e9)
	t.histMu.Lock()
	if existing, ok := t.hists[key]; ok {
		h = existing
	} else {
		t.hists[key] = h
	}
	t.histMu.Unlock()
	return h
}

// StageSummary is the per-(procedure, stage) duration digest exported
// by the simulator and /debug/scale. Durations are microseconds.
type StageSummary struct {
	Proc   string  `json:"proc"`
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summaries digests every (proc, stage) histogram, sorted by
// procedure then stage.
func (t *Tracer) Summaries() []StageSummary {
	t.histMu.RLock()
	keys := make([]string, 0, len(t.hists))
	for k := range t.hists {
		keys = append(keys, k)
	}
	hists := make(map[string]*Histogram, len(t.hists))
	for k, h := range t.hists {
		hists[k] = h
	}
	t.histMu.RUnlock()
	sort.Strings(keys)

	out := make([]StageSummary, 0, len(keys))
	for _, k := range keys {
		h := hists[k]
		var proc, stage string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				proc, stage = k[:i], k[i+1:]
				break
			}
		}
		out = append(out, StageSummary{
			Proc:   proc,
			Stage:  stage,
			Count:  h.H.Count(),
			MeanUS: h.H.Mean() / 1e3,
			P50US:  float64(h.H.Quantile(0.50)) / 1e3,
			P95US:  float64(h.H.Quantile(0.95)) / 1e3,
			P99US:  float64(h.H.Quantile(0.99)) / 1e3,
			MaxUS:  float64(h.H.Max()) / 1e3,
		})
	}
	return out
}

// StartSweeper runs SweepOrphans(maxAge) every interval until the
// returned stop function is called — daemons use it so spans whose
// procedure died mid-flight still surface (marked orphaned) instead of
// leaking.
func StartSweeper(tr *Tracer, every, maxAge time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				tr.SweepOrphans(maxAge)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Observer bundles the registry, tracer and flight-recorder event log
// one daemon wires through its components and exposes over HTTP.
// Events may be nil (struct-literal observers in tests); emission via
// eventlog.Log is nil-safe so components never need to check.
type Observer struct {
	Reg    *Registry
	Tracer *Tracer
	Events *eventlog.Log
}

// NewObserver creates a registry, a tracer recording into it, and an
// event log of the default capacity. spanLogSize bounds the span log
// (0 disables it, negative uses the default size).
func NewObserver(node string, spanLogSize int) *Observer {
	reg := NewRegistry()
	return &Observer{
		Reg:    reg,
		Tracer: NewTracer(TracerConfig{Node: node, Registry: reg, SpanLogSize: spanLogSize}),
		Events: eventlog.New(0),
	}
}
