package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is a settable monotonic clock for deterministic span
// tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *manualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestTracer(node string, logSize int) (*Tracer, *manualClock, *Registry) {
	clk := &manualClock{}
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{Node: node, Registry: reg, SpanLogSize: logSize, Clock: clk.Now})
	return tr, clk, reg
}

func TestSpanDuration(t *testing.T) {
	tr, clk, _ := newTestTracer("mmp-1", 16)
	s := tr.Begin(0xABC, "attach", StageMMP)
	clk.Advance(3 * time.Millisecond)
	s.End()

	spans := tr.Log().Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].DurNS != int64(3*time.Millisecond) {
		t.Fatalf("dur = %dns, want 3ms", spans[0].DurNS)
	}
	if spans[0].TraceHex != "0000000000000abc" {
		t.Fatalf("trace hex = %s", spans[0].TraceHex)
	}
	if spans[0].Orphan {
		t.Fatal("span marked orphan")
	}
}

// TestSpanDurationSkewFree asserts durations come from the single
// node-local monotonic clock: two tracers whose clocks disagree by an
// arbitrary offset (wall skew between hosts) still each measure their
// own stage exactly.
func TestSpanDurationSkewFree(t *testing.T) {
	trA, clkA, _ := newTestTracer("mlb", 16)
	trB, clkB, _ := newTestTracer("mmp-1", 16)
	clkB.Advance(12 * time.Hour) // gross skew between the two hosts

	trace := trA.NewTraceID()
	a := trA.Begin(trace, "attach", StageMLBRoute)
	clkA.Advance(1 * time.Millisecond)
	a.End()

	b := trB.Begin(trace, "attach", StageMMP)
	clkB.Advance(2 * time.Millisecond)
	b.End()

	da := trA.Log().Spans()[0].DurNS
	db := trB.Log().Spans()[0].DurNS
	if da != int64(time.Millisecond) || db != int64(2*time.Millisecond) {
		t.Fatalf("durations %d/%d affected by clock skew", da, db)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr, clk, _ := newTestTracer("n", 16)
	s := tr.Begin(1, "tau", StageMMP)
	clk.Advance(time.Millisecond)
	s.End()
	s.End()
	s.End()
	if got := tr.Log().Total(); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
	var nilSpan *ActiveSpan
	nilSpan.End() // must not panic
}

// TestOrphanSweep covers the MMP-dies-mid-procedure case: spans never
// Ended are force-closed, marked orphaned, and counted.
func TestOrphanSweep(t *testing.T) {
	tr, clk, reg := newTestTracer("mmp-2", 16)
	old := tr.Begin(7, "attach", StageMMP)
	clk.Advance(10 * time.Second)
	fresh := tr.Begin(8, "tau", StageMMP)
	clk.Advance(100 * time.Millisecond)

	if n := tr.SweepOrphans(5 * time.Second); n != 1 {
		t.Fatalf("swept %d spans, want 1", n)
	}
	if tr.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1 (the fresh span)", tr.ActiveCount())
	}
	spans := tr.Log().Spans()
	if len(spans) != 1 || !spans[0].Orphan || spans[0].TraceHex != "0000000000000007" {
		t.Fatalf("orphan span wrong: %+v", spans)
	}
	if got := reg.Counter(`span_orphans_total{node="mmp-2"}`).Value(); got != 1 {
		t.Fatalf("orphan counter = %d", got)
	}
	// Ending the swept span later must not double-record.
	old.End()
	if got := tr.Log().Total(); got != 1 {
		t.Fatalf("End after sweep recorded again: %d", got)
	}
	fresh.End()
}

// TestSpanLogTruncation fills the bounded log past capacity and checks
// retention, ordering and the dropped counter.
func TestSpanLogTruncation(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Span{Proc: "attach", Stage: StageMMP, StartNS: int64(i)})
	}
	if l.Len() != 4 {
		t.Fatalf("retained %d, want 4", l.Len())
	}
	if l.Total() != 10 || l.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", l.Total(), l.Dropped())
	}
	spans := l.Spans()
	for i, s := range spans {
		if want := int64(6 + i); s.StartNS != want {
			t.Fatalf("span %d StartNS = %d, want %d (oldest-first of most recent)", i, s.StartNS, want)
		}
	}
}

func TestSpanLogJSONL(t *testing.T) {
	tr, clk, _ := newTestTracer("mlb", 8)
	s := tr.Begin(0x42, "service-request", StageMLBRoute)
	clk.Advance(time.Millisecond)
	s.End()
	var b strings.Builder
	if err := tr.Log().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(b.String())
	for _, want := range []string{
		`"trace":"0000000000000042"`,
		`"proc":"service-request"`,
		`"stage":"mlb-route"`,
		`"node":"mlb"`,
		`"dur_ns":1000000`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("JSONL missing %q: %s", want, line)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	tr := NewTracer(TracerConfig{Node: "x"})
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := tr.NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x", id)
		}
		seen[id] = true
	}
}

func TestObserveAndSummaries(t *testing.T) {
	tr, _, _ := newTestTracer("sim", 0)
	for i := 0; i < 100; i++ {
		tr.Observe(0, "attach", StageQueue, time.Duration(i+1)*time.Millisecond)
		tr.Observe(0, "attach", StageService, 2*time.Millisecond)
		tr.Observe(0, "tau", StageService, time.Millisecond)
	}
	sums := tr.Summaries()
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3", len(sums))
	}
	// Sorted by proc then stage: attach/queue, attach/service, tau/service.
	if sums[0].Proc != "attach" || sums[0].Stage != StageQueue {
		t.Fatalf("first summary %+v", sums[0])
	}
	if sums[0].Count != 100 {
		t.Fatalf("count = %d", sums[0].Count)
	}
	if sums[0].P99US < 90_000 || sums[0].P99US > 110_000 {
		t.Fatalf("attach/queue p99 = %g us, want ~99000", sums[0].P99US)
	}
}

// TestTracerConcurrent exercises Begin/End/Observe/Sweep from many
// goroutines; meaningful under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{Node: "race", Registry: NewRegistry(), SpanLogSize: 64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s := tr.Begin(tr.NewTraceID(), "attach", StageMMP)
				tr.Observe(0, "tau", StageService, time.Microsecond)
				s.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			tr.SweepOrphans(0)
			tr.Summaries()
		}
	}()
	wg.Wait()
}
