package timeseries

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"time"
)

// HistoryPath is where the collector mounts its JSON view.
const HistoryPath = "/debug/scale/history"

// WindowStats is one trailing window's digest of a series.
type WindowStats struct {
	Window string  `json:"window"`
	SpanMS float64 `json:"span_ms"`
	// Counters and histograms: per-second rate of increase.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Gauges and histograms: mean over the window.
	Mean float64 `json:"mean,omitempty"`
	// Histograms only: observation count and percentiles in
	// exposition units.
	Count uint64  `json:"count,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// HistorySeries is one metric's history view.
type HistorySeries struct {
	ID      string        `json:"id"`
	Kind    Kind          `json:"kind"`
	Last    float64       `json:"last"`
	Windows []WindowStats `json:"windows,omitempty"`
	Samples []SamplePoint `json:"samples,omitempty"`
}

// History is the JSON body served at /debug/scale/history.
type History struct {
	IntervalMS float64         `json:"interval_ms"`
	Retained   int             `json:"retained"`
	Series     []HistorySeries `json:"series"`
}

// HistoryOpts filters a history export.
type HistoryOpts struct {
	// Prefix keeps only series whose id starts with it ("" keeps all).
	Prefix string
	// MaxSamples bounds the raw samples attached per scalar series
	// (0 omits samples, negative attaches everything retained).
	MaxSamples int
	// Windows defaults to DefaultWindows.
	Windows []Window
}

// History digests the retained rings into the export shape. Every
// float is finite — JSON encoding never fails on the result.
func (c *Collector) History(opts HistoryOpts) History {
	windows := opts.Windows
	if len(windows) == 0 {
		windows = DefaultWindows
	}
	out := History{
		IntervalMS: float64(c.cfg.Interval) / float64(time.Millisecond),
		Retained:   c.Samples(),
	}
	match := func(id string) bool {
		return opts.Prefix == "" || len(id) >= len(opts.Prefix) && id[:len(opts.Prefix)] == opts.Prefix
	}
	for _, id := range c.IDs(KindCounter) {
		if !match(id) {
			continue
		}
		s := HistorySeries{ID: id, Kind: KindCounter}
		if v, ok := c.CounterLast(id); ok {
			s.Last = v
		}
		for _, w := range windows {
			if rate, ok := c.Rate(id, w.D); ok {
				_, span, _ := c.CounterDelta(id, w.D)
				s.Windows = append(s.Windows, WindowStats{
					Window:     w.Name,
					SpanMS:     float64(span) / float64(time.Millisecond),
					RatePerSec: sanitize(rate),
				})
			}
		}
		if opts.MaxSamples != 0 {
			s.Samples = c.ScalarSamples(KindCounter, id, opts.MaxSamples)
		}
		out.Series = append(out.Series, s)
	}
	for _, id := range c.IDs(KindGauge) {
		if !match(id) {
			continue
		}
		s := HistorySeries{ID: id, Kind: KindGauge}
		if v, ok := c.GaugeLast(id); ok {
			s.Last = sanitize(v)
		}
		for _, w := range windows {
			if mean, ok := c.GaugeMean(id, w.D); ok {
				s.Windows = append(s.Windows, WindowStats{
					Window: w.Name,
					Mean:   sanitize(mean),
				})
			}
		}
		if opts.MaxSamples != 0 {
			samples := c.ScalarSamples(KindGauge, id, opts.MaxSamples)
			for i := range samples {
				samples[i].V = sanitize(samples[i].V)
			}
			s.Samples = samples
		}
		out.Series = append(out.Series, s)
	}
	for _, id := range c.IDs(KindHistogram) {
		if !match(id) {
			continue
		}
		s := HistorySeries{ID: id, Kind: KindHistogram}
		for _, w := range windows {
			hw, ok := c.WindowHist(id, w.D)
			if !ok {
				continue
			}
			s.Windows = append(s.Windows, WindowStats{
				Window:     w.Name,
				SpanMS:     float64(hw.Span) / float64(time.Millisecond),
				RatePerSec: sanitize(hw.PerSec),
				Mean:       sanitize(hw.Mean),
				Count:      hw.Count,
				P50:        sanitize(hw.P50),
				P99:        sanitize(hw.P99),
			})
		}
		if total, ok := c.HistTotal(id); ok {
			s.Last = float64(total)
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// sanitize maps non-finite values to 0 so the JSON encoder never
// chokes on an empty-window artifact.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Mount registers the history endpoint on mux. Query parameters:
// ?prefix= filters series by id prefix, ?samples=N bounds attached raw
// samples per series (default 60, 0 omits them).
func (c *Collector) Mount(mux *http.ServeMux) {
	mux.HandleFunc(HistoryPath, func(w http.ResponseWriter, r *http.Request) {
		opts := HistoryOpts{Prefix: r.URL.Query().Get("prefix"), MaxSamples: 60}
		if s := r.URL.Query().Get("samples"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				opts.MaxSamples = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.History(opts))
	})
}
