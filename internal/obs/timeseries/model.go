package timeseries

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ModelPath is where the model feed mounts its JSON view.
const ModelPath = "/debug/scale/model"

// SplitID parses a Prometheus-style metric id into its family and
// label map, e.g. `mmp_requests_total{mmp="mmp-1",proc="attach"}` →
// ("mmp_requests_total", {mmp: mmp-1, proc: attach}). Malformed label
// blocks yield the family with nil labels.
func SplitID(id string) (family string, labelsOf map[string]string) {
	i := strings.IndexByte(id, '{')
	if i < 0 {
		return id, nil
	}
	family = id[:i]
	block := id[i:]
	if len(block) < 2 || block[len(block)-1] != '}' {
		return family, nil
	}
	body := block[1 : len(block)-1]
	out := make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return family, nil
		}
		key := body[:eq]
		rest := body[eq+1:]
		// Values are Go-quoted; find the closing quote honoring
		// backslash escapes, then unquote.
		end := -1
		for j := 1; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return family, nil
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return family, nil
		}
		out[key] = val
		body = rest[end+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if body != "" {
			return family, nil
		}
	}
	return family, out
}

// ModelInputs packages the windowed signals the capacity model and the
// future autoscaling controller (ROADMAP item 2) consume: offered load
// per procedure, how busy each MMP is, how deep its admission queue
// sits, and how many VMs are serving. Everything is derived from the
// history rings — the controller never touches collection code.
type ModelInputs struct {
	TimeUnixMS int64   `json:"t_unix_ms"`
	WindowMS   float64 `json:"window_ms"`
	// VMs is the serving-ring size (MLB view), falling back to the
	// number of MMPs reporting busy fractions.
	VMs int `json:"vms"`
	// ArrivalRatesPerSec maps procedure → windowed initiation rate,
	// measured at MLB ingress before shedding (offered load, not
	// admitted load).
	ArrivalRatesPerSec map[string]float64 `json:"arrival_rates_per_sec"`
	// BusyFractions maps MMP id → mean busy-time fraction over the
	// window.
	BusyFractions map[string]float64 `json:"busy_fractions"`
	// QueueDepths maps MMP id → mean admission queue depth over the
	// window.
	QueueDepths map[string]float64 `json:"queue_depths"`
}

// Metric families the feed is assembled from.
const (
	famIngress  = "mlb_ingress_total"
	famRequests = "mmp_requests_total"
	famBusy     = "mmp_busy_fraction"
	famQueue    = "mmp_admission_queue_depth"
	famRingMMPs = "mlb_ring_mmps"
)

// ModelFeed derives ModelInputs from a Collector.
type ModelFeed struct {
	Col *Collector
	// Window is the default trailing window (10s when zero).
	Window time.Duration
}

// NewModelFeed wraps col with the given default window.
func NewModelFeed(col *Collector, window time.Duration) *ModelFeed {
	if window <= 0 {
		window = 10 * time.Second
	}
	return &ModelFeed{Col: col, Window: window}
}

// Inputs assembles the model inputs over the trailing window (feed
// default when window <= 0).
func (f *ModelFeed) Inputs(window time.Duration) ModelInputs {
	if window <= 0 {
		window = f.Window
	}
	in := ModelInputs{
		WindowMS:           float64(window) / float64(time.Millisecond),
		ArrivalRatesPerSec: map[string]float64{},
		BusyFractions:      map[string]float64{},
		QueueDepths:        map[string]float64{},
	}
	in.TimeUnixMS = time.Now().UnixMilli()

	// Arrival rates: prefer the MLB's ingress counters (procedure
	// initiations counted before shedding — true offered load). On an
	// MMP-only deployment fall back to the engine's per-proc request
	// counters, summed across MMPs; those count every message of a
	// procedure, so they overestimate initiations — the MLB view wins
	// whenever both exist (e.g. a shared test registry).
	counters := f.Col.IDs(KindCounter)
	haveIngress := false
	for _, id := range counters {
		if fam, _ := SplitID(id); fam == famIngress {
			haveIngress = true
			break
		}
	}
	for _, id := range counters {
		fam, lb := SplitID(id)
		var proc string
		switch {
		case fam == famIngress:
			proc = lb["proc"]
		case !haveIngress && fam == famRequests:
			proc = lb["proc"]
		default:
			continue
		}
		if proc == "" {
			continue
		}
		if rate, ok := f.Col.Rate(id, window); ok {
			in.ArrivalRatesPerSec[proc] += sanitize(rate)
		}
	}

	for _, id := range f.Col.IDs(KindGauge) {
		fam, lb := SplitID(id)
		switch fam {
		case famBusy:
			if v, ok := f.Col.GaugeMean(id, window); ok {
				in.BusyFractions[keyOr(lb["mmp"], id)] = sanitize(v)
			}
		case famQueue:
			if v, ok := f.Col.GaugeMean(id, window); ok {
				in.QueueDepths[keyOr(lb["mmp"], id)] = sanitize(v)
			}
		case famRingMMPs:
			if v, ok := f.Col.GaugeLast(id); ok {
				in.VMs = int(v + 0.5)
			}
		}
	}
	if in.VMs == 0 {
		in.VMs = len(in.BusyFractions)
	}
	return in
}

func keyOr(k, fallback string) string {
	if k != "" {
		return k
	}
	return fallback
}

// Mount registers the model endpoint on mux. ?window=10s overrides the
// feed's default trailing window.
func (f *ModelFeed) Mount(mux *http.ServeMux) {
	mux.HandleFunc(ModelPath, func(w http.ResponseWriter, r *http.Request) {
		window := time.Duration(0)
		if s := r.URL.Query().Get("window"); s != "" {
			if d, err := time.ParseDuration(s); err == nil {
				window = d
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.Inputs(window))
	})
}
