package timeseries

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"scale/internal/obs"
)

func mustMux(c *Collector) *http.ServeMux {
	mux := http.NewServeMux()
	c.Mount(mux)
	return mux
}

func TestSplitID(t *testing.T) {
	cases := []struct {
		id     string
		family string
		labels map[string]string
	}{
		{"mlb_ring_mmps", "mlb_ring_mmps", nil},
		{`mmp_requests_total{proc="attach"}`, "mmp_requests_total", map[string]string{"proc": "attach"}},
		{`mmp_requests_total{mmp="mmp-1",proc="service-request"}`, "mmp_requests_total",
			map[string]string{"mmp": "mmp-1", "proc": "service-request"}},
		{`x{k="a\"b"}`, "x", map[string]string{"k": `a"b`}},
		{`broken{k=}`, "broken", nil},
		{`broken{`, "broken", nil},
	}
	for _, tc := range cases {
		fam, lb := SplitID(tc.id)
		if fam != tc.family || !reflect.DeepEqual(lb, tc.labels) {
			t.Errorf("SplitID(%q) = %q %v, want %q %v", tc.id, fam, lb, tc.family, tc.labels)
		}
	}
}

func TestModelInputsFromMLBMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	attach := reg.Counter(`mlb_ingress_total{proc="attach"}`)
	tau := reg.Counter(`mlb_ingress_total{proc="tau"}`)
	// Requests counters must be ignored when ingress counters exist.
	reg.Counter(`mmp_requests_total{mmp="mmp-1",proc="attach"}`).Add(100000)
	busy1 := reg.Gauge(`mmp_busy_fraction{mmp="mmp-1"}`)
	busy2 := reg.Gauge(`mmp_busy_fraction{mmp="mmp-2"}`)
	reg.Gauge(`mmp_admission_queue_depth{mmp="mmp-1"}`).Set(3)
	reg.GaugeFunc("mlb_ring_mmps", func() float64 { return 2 })

	c, clk := newTestCollector(reg, 64)
	for i := 0; i < 10; i++ {
		attach.Add(40) // 40/s
		tau.Add(10)    // 10/s
		busy1.Set(0.8)
		busy2.Set(0.4)
		c.SampleOnce()
		clk.advance(time.Second)
	}

	feed := NewModelFeed(c, 10*time.Second)
	in := feed.Inputs(0)

	if in.VMs != 2 {
		t.Fatalf("VMs = %d, want 2", in.VMs)
	}
	if r := in.ArrivalRatesPerSec["attach"]; math.Abs(r-40) > 1 {
		t.Fatalf("attach arrival rate = %g, want ≈40 (ingress counters, not mmp_requests)", r)
	}
	if r := in.ArrivalRatesPerSec["tau"]; math.Abs(r-10) > 0.5 {
		t.Fatalf("tau arrival rate = %g, want ≈10", r)
	}
	if v := in.BusyFractions["mmp-1"]; math.Abs(v-0.8) > 1e-9 {
		t.Fatalf("mmp-1 busy = %g, want 0.8", v)
	}
	if v := in.BusyFractions["mmp-2"]; math.Abs(v-0.4) > 1e-9 {
		t.Fatalf("mmp-2 busy = %g, want 0.4", v)
	}
	if v := in.QueueDepths["mmp-1"]; math.Abs(v-3) > 1e-9 {
		t.Fatalf("mmp-1 queue depth = %g, want 3", v)
	}
}

func TestModelInputsMMPFallback(t *testing.T) {
	reg := obs.NewRegistry()
	// No MLB in this process: arrival rates fall back to summing
	// mmp_requests_total across MMP labels.
	r1 := reg.Counter(`mmp_requests_total{mmp="mmp-1",proc="attach"}`)
	r2 := reg.Counter(`mmp_requests_total{mmp="mmp-2",proc="attach"}`)
	reg.Gauge(`mmp_busy_fraction{mmp="mmp-1"}`).Set(0.5)

	c, clk := newTestCollector(reg, 32)
	for i := 0; i < 5; i++ {
		r1.Add(6)
		r2.Add(4)
		c.SampleOnce()
		clk.advance(time.Second)
	}

	in := NewModelFeed(c, 0).Inputs(4 * time.Second)
	if r := in.ArrivalRatesPerSec["attach"]; math.Abs(r-10) > 0.5 {
		t.Fatalf("fallback attach rate = %g, want ≈10 (summed across mmp labels)", r)
	}
	// No ring gauge → VM count falls back to busy-fraction cardinality.
	if in.VMs != 1 {
		t.Fatalf("VMs = %d, want 1 (fallback)", in.VMs)
	}
}

func TestModelHTTPEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter(`mlb_ingress_total{proc="attach"}`)
	c, clk := newTestCollector(reg, 32)
	for i := 0; i < 5; i++ {
		ctr.Add(20)
		c.SampleOnce()
		clk.advance(time.Second)
	}
	mux := http.NewServeMux()
	NewModelFeed(c, 10*time.Second).Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + ModelPath + "?window=4s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var in ModelInputs
	if err := json.NewDecoder(resp.Body).Decode(&in); err != nil {
		t.Fatal(err)
	}
	if in.WindowMS != 4000 {
		t.Fatalf("window_ms = %g, want 4000", in.WindowMS)
	}
	if r := in.ArrivalRatesPerSec["attach"]; math.Abs(r-20) > 1 {
		t.Fatalf("attach rate over HTTP = %g, want ≈20", r)
	}
}
