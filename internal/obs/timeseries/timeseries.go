// Package timeseries turns the point-in-time metrics registry into
// history: a background collector samples every registered counter,
// gauge and histogram into fixed-size ring buffers at a configurable
// interval, and derived views answer windowed questions — per-second
// rates over the last 10s/1m/5m, p50/p99 of only the observations that
// fell inside a window (via sparse histogram snapshot deltas), mean
// gauge values over a window.
//
// The paper's time-series figures (per-VM CPU timelines, delay
// percentiles during a storm, Section 4 of PAPER.md) are windowed
// views over exactly this history, and ROADMAP item 2's predictive
// autoscaler consumes the same rings through the model feed.
package timeseries

import (
	"math"
	"sort"
	"sync"
	"time"

	"scale/internal/metrics"
	"scale/internal/obs"
)

// Kind classifies a tracked series.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Window is a named trailing interval used in exports.
type Window struct {
	Name string
	D    time.Duration
}

// DefaultWindows are the trailing windows rendered by the history and
// model endpoints.
var DefaultWindows = []Window{
	{"10s", 10 * time.Second},
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
}

// Config parameterizes a Collector.
type Config struct {
	Registry *obs.Registry
	// Interval between samples (default 1s).
	Interval time.Duration
	// Retention is how many samples each ring keeps (default 600 —
	// ten minutes at the default interval).
	Retention int
	// Now overrides the clock for tests.
	Now func() time.Time
}

// DefaultInterval is the sampling cadence used when Config.Interval is
// zero.
const DefaultInterval = time.Second

// DefaultRetention is the ring length used when Config.Retention is
// zero.
const DefaultRetention = 600

type scalarSeries struct {
	v []float64 // ring aligned with Collector.times; NaN = not yet registered
}

type histSeries struct {
	scale float64
	snaps []metrics.HistSnapshot // ring aligned with Collector.times
	have  []bool
}

// Collector samples a registry into aligned ring buffers. One shared
// timestamp ring plus one value ring per metric keeps lookups O(ring)
// and memory strictly bounded: retention × (8 bytes per scalar series
// + one sparse snapshot per histogram series).
type Collector struct {
	cfg Config

	mu       sync.RWMutex
	times    []int64 // unix nanos
	head     int     // next write slot
	n        int     // valid samples
	counters map[string]*scalarSeries
	gauges   map[string]*scalarSeries
	hists    map[string]*histSeries

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a collector for cfg.Registry. Call Start to begin
// background sampling, or drive it manually with SampleOnce.
func New(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Collector{
		cfg:      cfg,
		times:    make([]int64, cfg.Retention),
		counters: make(map[string]*scalarSeries),
		gauges:   make(map[string]*scalarSeries),
		hists:    make(map[string]*histSeries),
	}
}

// Interval reports the configured sampling interval.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// Start launches the background sampling loop. It is a no-op if the
// collector is already running.
func (c *Collector) Start() {
	c.mu.Lock()
	if c.done != nil {
		c.mu.Unlock()
		return
	}
	c.done = make(chan struct{})
	done := c.done
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.SampleOnce()
			}
		}
	}()
}

// Stop halts background sampling and waits for the loop to exit.
func (c *Collector) Stop() {
	c.mu.Lock()
	done := c.done
	c.done = nil
	c.mu.Unlock()
	if done != nil {
		close(done)
		c.wg.Wait()
	}
}

// SampleOnce takes one sample of every registered metric. Exported so
// tests (and one-shot tools) can drive collection deterministically.
func (c *Collector) SampleOnce() {
	now := c.cfg.Now()
	counters, gauges := c.cfg.Registry.ScalarSnapshot()
	type hsnap struct {
		id    string
		scale float64
		s     metrics.HistSnapshot
	}
	var hsnaps []hsnap
	c.cfg.Registry.ForEachHistogram(func(id string, h *obs.Histogram) {
		scale := h.Scale
		if scale == 0 {
			scale = 1
		}
		hsnaps = append(hsnaps, hsnap{id: id, scale: scale, s: h.H.Snapshot()})
	})

	c.mu.Lock()
	defer c.mu.Unlock()
	slot := c.head
	c.times[slot] = now.UnixNano()
	for id, v := range counters {
		c.seriesLocked(c.counters, id).v[slot] = float64(v)
	}
	for id, v := range gauges {
		c.seriesLocked(c.gauges, id).v[slot] = v
	}
	// A metric can disappear (callback deregistered by a dying
	// component); mark its slot absent rather than repeating the last
	// value forever.
	for id, s := range c.counters {
		if _, ok := counters[id]; !ok {
			s.v[slot] = math.NaN()
		}
	}
	for id, s := range c.gauges {
		if _, ok := gauges[id]; !ok {
			s.v[slot] = math.NaN()
		}
	}
	for _, hs := range c.hists {
		hs.have[slot] = false
	}
	for _, h := range hsnaps {
		hs, ok := c.hists[h.id]
		if !ok {
			hs = &histSeries{
				scale: h.scale,
				snaps: make([]metrics.HistSnapshot, len(c.times)),
				have:  make([]bool, len(c.times)),
			}
			c.hists[h.id] = hs
		}
		hs.snaps[slot] = h.s
		hs.have[slot] = true
	}
	c.head = (c.head + 1) % len(c.times)
	if c.n < len(c.times) {
		c.n++
	}
}

// seriesLocked returns the scalar series for id, creating it with all
// retained slots absent; c.mu must be held.
func (c *Collector) seriesLocked(m map[string]*scalarSeries, id string) *scalarSeries {
	s, ok := m[id]
	if !ok {
		s = &scalarSeries{v: make([]float64, len(c.times))}
		for i := range s.v {
			s.v[i] = math.NaN()
		}
		m[id] = s
	}
	return s
}

// newestLocked returns the ring index of the newest sample, or -1.
func (c *Collector) newestLocked() int {
	if c.n == 0 {
		return -1
	}
	i := c.head - 1
	if i < 0 {
		i += len(c.times)
	}
	return i
}

// windowStartLocked returns the ring index of the far edge of the
// trailing window: the newest sample at least `window` older than the
// newest sample, so the measured span covers the whole window. A
// window shorter than one sampling interval degrades to the last
// interval; a window longer than retained history clamps to the
// oldest retained sample.
func (c *Collector) windowStartLocked(window time.Duration) int {
	newest := c.newestLocked()
	if newest < 0 {
		return -1
	}
	tNew := c.times[newest]
	idx := newest
	for k := 1; k < c.n; k++ {
		i := newest - k
		if i < 0 {
			i += len(c.times)
		}
		idx = i
		if tNew-c.times[i] >= window.Nanoseconds() {
			break
		}
	}
	return idx
}

// IDs lists the tracked series ids of one kind, sorted.
func (c *Collector) IDs(kind Kind) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var m map[string]*scalarSeries
	switch kind {
	case KindCounter:
		m = c.counters
	case KindGauge:
		m = c.gauges
	case KindHistogram:
		out := make([]string, 0, len(c.hists))
		for id := range c.hists {
			out = append(out, id)
		}
		sort.Strings(out)
		return out
	}
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Samples reports how many samples the collector has taken (capped at
// retention).
func (c *Collector) Samples() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Rate reports the counter's per-second increase over the trailing
// window (clamped to retained history). ok is false when the series is
// unknown or fewer than two samples cover it.
func (c *Collector) Rate(id string, window time.Duration) (perSec float64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, found := c.counters[id]
	if !found {
		return 0, false
	}
	newest := c.newestLocked()
	start := c.windowStartLocked(window)
	if newest < 0 || start == newest {
		return 0, false
	}
	vNew, vOld := s.v[newest], s.v[start]
	if math.IsNaN(vNew) || math.IsNaN(vOld) {
		return 0, false
	}
	dt := float64(c.times[newest]-c.times[start]) / 1e9
	if dt <= 0 {
		return 0, false
	}
	d := vNew - vOld
	if d < 0 { // counter reset
		d = 0
	}
	return d / dt, true
}

// CounterDelta reports the counter's increase over the trailing window
// and the actual time span measured.
func (c *Collector) CounterDelta(id string, window time.Duration) (delta float64, span time.Duration, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, found := c.counters[id]
	if !found {
		return 0, 0, false
	}
	newest := c.newestLocked()
	start := c.windowStartLocked(window)
	if newest < 0 || start == newest {
		return 0, 0, false
	}
	vNew, vOld := s.v[newest], s.v[start]
	if math.IsNaN(vNew) || math.IsNaN(vOld) {
		return 0, 0, false
	}
	d := vNew - vOld
	if d < 0 {
		d = 0
	}
	return d, time.Duration(c.times[newest] - c.times[start]), true
}

// GaugeLast reports the most recent sampled value of a gauge.
func (c *Collector) GaugeLast(id string) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, found := c.gauges[id]
	if !found || c.n == 0 {
		return 0, false
	}
	newest := c.newestLocked()
	for k := 0; k < c.n; k++ {
		i := newest - k
		if i < 0 {
			i += len(c.times)
		}
		if !math.IsNaN(s.v[i]) {
			return s.v[i], true
		}
	}
	return 0, false
}

// GaugeMean reports the mean of the gauge's samples inside the
// trailing window.
func (c *Collector) GaugeMean(id string, window time.Duration) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, found := c.gauges[id]
	if !found || c.n == 0 {
		return 0, false
	}
	newest := c.newestLocked()
	start := c.windowStartLocked(window)
	var sum float64
	var cnt int
	for i := start; ; i = (i + 1) % len(c.times) {
		if !math.IsNaN(s.v[i]) {
			sum += s.v[i]
			cnt++
		}
		if i == newest {
			break
		}
	}
	if cnt == 0 {
		return 0, false
	}
	return sum / float64(cnt), true
}

// CounterLast reports the most recent cumulative value of a counter.
func (c *Collector) CounterLast(id string) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, found := c.counters[id]
	if !found || c.n == 0 {
		return 0, false
	}
	newest := c.newestLocked()
	if math.IsNaN(s.v[newest]) {
		return 0, false
	}
	return s.v[newest], true
}

// HistWindow summarizes the observations a histogram recorded inside a
// trailing window, in exposition units.
type HistWindow struct {
	Count  uint64
	PerSec float64
	Mean   float64
	P50    float64
	P99    float64
	Span   time.Duration
}

// WindowHist digests a histogram's trailing window: count, rate, mean
// and p50/p99 of only the observations inside it. ok is false when the
// window holds no observations.
func (c *Collector) WindowHist(id string, window time.Duration) (HistWindow, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hs, found := c.hists[id]
	if !found || c.n == 0 {
		return HistWindow{}, false
	}
	newest := c.newestLocked()
	start := c.windowStartLocked(window)
	if !hs.have[newest] {
		return HistWindow{}, false
	}
	cur := hs.snaps[newest]
	var prev metrics.HistSnapshot
	if start != newest && hs.have[start] {
		prev = hs.snaps[start]
	} else {
		prev = metrics.HistSnapshot{SubBits: cur.SubBits}
	}
	n := metrics.DeltaCount(cur, prev)
	if n == 0 {
		return HistWindow{}, false
	}
	out := HistWindow{
		Count: n,
		Mean:  metrics.DeltaMean(cur, prev) / hs.scale,
		Span:  time.Duration(c.times[newest] - c.times[start]),
	}
	if p, ok := metrics.DeltaQuantile(cur, prev, 0.50); ok {
		out.P50 = float64(p) / hs.scale
	}
	if p, ok := metrics.DeltaQuantile(cur, prev, 0.99); ok {
		out.P99 = float64(p) / hs.scale
	}
	if out.Span > 0 {
		out.PerSec = float64(n) / out.Span.Seconds()
	}
	return out, true
}

// WindowQuantile reports the q-quantile (exposition units) of the
// observations a histogram recorded inside the trailing window.
func (c *Collector) WindowQuantile(id string, window time.Duration, q float64) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hs, found := c.hists[id]
	if !found {
		return 0, false
	}
	newest := c.newestLocked()
	start := c.windowStartLocked(window)
	if newest < 0 || !hs.have[newest] {
		return 0, false
	}
	cur := hs.snaps[newest]
	var prev metrics.HistSnapshot
	if start != newest && hs.have[start] {
		prev = hs.snaps[start]
	} else {
		prev = metrics.HistSnapshot{SubBits: cur.SubBits}
	}
	v, ok := metrics.DeltaQuantile(cur, prev, q)
	if !ok {
		return 0, false
	}
	return float64(v) / hs.scale, true
}

// HistTotal reports the cumulative observation count in the newest
// sample of a histogram series.
func (c *Collector) HistTotal(id string) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hs, found := c.hists[id]
	if !found {
		return 0, false
	}
	newest := c.newestLocked()
	if newest < 0 || !hs.have[newest] {
		return 0, false
	}
	return hs.snaps[newest].Total, true
}

// SamplePoint is one retained (time, value) sample.
type SamplePoint struct {
	TimeUnixMS int64   `json:"t_unix_ms"`
	V          float64 `json:"v"`
}

// ScalarSamples returns up to max retained samples of a counter or
// gauge series, oldest first (absent slots are skipped). max <= 0
// returns everything retained.
func (c *Collector) ScalarSamples(kind Kind, id string, max int) []SamplePoint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var s *scalarSeries
	switch kind {
	case KindCounter:
		s = c.counters[id]
	case KindGauge:
		s = c.gauges[id]
	}
	if s == nil || c.n == 0 {
		return nil
	}
	out := make([]SamplePoint, 0, c.n)
	start := c.head - c.n
	if start < 0 {
		start += len(c.times)
	}
	for k := 0; k < c.n; k++ {
		i := (start + k) % len(c.times)
		if math.IsNaN(s.v[i]) {
			continue
		}
		out = append(out, SamplePoint{TimeUnixMS: c.times[i] / 1e6, V: s.v[i]})
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}
