package timeseries

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scale/internal/obs"
)

// fakeClock steps a deterministic clock for SampleOnce-driven tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) now() time.Time { return f.t }

func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestCollector(reg *obs.Registry, retention int) (*Collector, *fakeClock) {
	clk := newFakeClock()
	c := New(Config{Registry: reg, Interval: time.Second, Retention: retention, Now: clk.now})
	return c, clk
}

func TestCounterRateOverWindow(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter(`mlb_ingress_total{proc="attach"}`)
	c, clk := newTestCollector(reg, 64)

	// 10 samples 1s apart; counter grows 5/s for the first half then
	// 50/s for the second half.
	for i := 0; i < 5; i++ {
		ctr.Add(5)
		c.SampleOnce()
		clk.advance(time.Second)
	}
	for i := 0; i < 5; i++ {
		ctr.Add(50)
		c.SampleOnce()
		clk.advance(time.Second)
	}

	// Trailing 4s covers only the fast phase.
	rate, ok := c.Rate(`mlb_ingress_total{proc="attach"}`, 4*time.Second)
	if !ok {
		t.Fatal("Rate not ok")
	}
	if math.Abs(rate-50) > 0.01 {
		t.Fatalf("4s rate = %g, want 50", rate)
	}
	// Trailing 9s covers both phases: (4*5 + 5*50)/9 ≈ 30.
	rate, _ = c.Rate(`mlb_ingress_total{proc="attach"}`, 9*time.Second)
	if rate < 25 || rate > 35 {
		t.Fatalf("9s rate = %g, want ≈30", rate)
	}

	if _, ok := c.Rate("nonexistent", time.Second); ok {
		t.Fatal("Rate of unknown series reported ok")
	}
}

func TestGaugeViewsAndLateRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	c, clk := newTestCollector(reg, 64)

	// Three samples before the gauge exists.
	for i := 0; i < 3; i++ {
		c.SampleOnce()
		clk.advance(time.Second)
	}
	g := reg.Gauge(`mmp_busy_fraction{mmp="mmp-1"}`)
	for i := 1; i <= 4; i++ {
		g.Set(float64(i) * 0.2) // 0.2, 0.4, 0.6, 0.8
		c.SampleOnce()
		clk.advance(time.Second)
	}

	last, ok := c.GaugeLast(`mmp_busy_fraction{mmp="mmp-1"}`)
	if !ok || math.Abs(last-0.8) > 1e-9 {
		t.Fatalf("GaugeLast = %g ok=%v, want 0.8", last, ok)
	}
	// A window reaching back before registration must skip the absent
	// slots, not average NaNs.
	mean, ok := c.GaugeMean(`mmp_busy_fraction{mmp="mmp-1"}`, 10*time.Second)
	if !ok || math.Abs(mean-0.5) > 1e-9 {
		t.Fatalf("GaugeMean = %g ok=%v, want 0.5", mean, ok)
	}
}

func TestWindowHistogramPercentiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram(`span_duration_seconds{proc="attach",stage="mmp"}`, 1e9)
	c, clk := newTestCollector(reg, 64)

	// Baseline sample before any observation, so the widest window has
	// an empty far edge and covers everything.
	c.SampleOnce()
	clk.advance(time.Second)
	// Epoch 1: 1ms latencies.
	for i := 0; i < 100; i++ {
		h.Record(int64(time.Millisecond))
	}
	c.SampleOnce()
	clk.advance(time.Second)
	// Epoch 2: 100ms latencies.
	for i := 0; i < 100; i++ {
		h.Record(int64(100 * time.Millisecond))
	}
	c.SampleOnce()

	// A 0.5s window holds only epoch 2 — its p50 must be ≈0.1s even
	// though the cumulative p50 is ≈0.001s.
	hw, ok := c.WindowHist(`span_duration_seconds{proc="attach",stage="mmp"}`, 500*time.Millisecond)
	if !ok {
		t.Fatal("WindowHist not ok")
	}
	if hw.Count != 100 {
		t.Fatalf("window count = %d, want 100", hw.Count)
	}
	if hw.P50 < 0.09 || hw.P50 > 0.11 {
		t.Fatalf("window p50 = %g, want ≈0.1", hw.P50)
	}
	// The wide window includes both epochs: p50 back near 1ms.
	hw, ok = c.WindowHist(`span_duration_seconds{proc="attach",stage="mmp"}`, time.Hour)
	if !ok || hw.Count != 200 {
		t.Fatalf("wide window count = %d ok=%v, want 200", hw.Count, ok)
	}
	if hw.P50 > 0.01 {
		t.Fatalf("wide window p50 = %g, want ≈0.001", hw.P50)
	}

	q, ok := c.WindowQuantile(`span_duration_seconds{proc="attach",stage="mmp"}`, 500*time.Millisecond, 0.99)
	if !ok || q < 0.09 {
		t.Fatalf("WindowQuantile p99 = %g ok=%v, want ≈0.1", q, ok)
	}
}

func TestRingWrap(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("frames_total")
	c, clk := newTestCollector(reg, 4)

	for i := 0; i < 10; i++ {
		ctr.Add(10)
		c.SampleOnce()
		clk.advance(time.Second)
	}
	if c.Samples() != 4 {
		t.Fatalf("Samples = %d, want 4 (retention)", c.Samples())
	}
	// Window far wider than retention clamps to what's retained.
	rate, ok := c.Rate("frames_total", time.Hour)
	if !ok || math.Abs(rate-10) > 0.01 {
		t.Fatalf("clamped rate = %g ok=%v, want 10", rate, ok)
	}
	pts := c.ScalarSamples(KindCounter, "frames_total", 0)
	if len(pts) != 4 {
		t.Fatalf("retained %d sample points, want 4", len(pts))
	}
	if pts[0].V != 70 || pts[3].V != 100 {
		t.Fatalf("sample values = %v, want cumulative 70..100", pts)
	}
	if pts = c.ScalarSamples(KindCounter, "frames_total", 2); len(pts) != 2 || pts[1].V != 100 {
		t.Fatalf("max=2 samples = %v, want newest two", pts)
	}
}

func TestHistoryExportIsFiniteJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(`mlb_ingress_total{proc="attach"}`).Add(7)
	reg.Gauge("mlb_headroom").Set(0.42)
	reg.Histogram(`span_duration_seconds{proc="attach",stage="mmp"}`, 1e9).Record(int64(2 * time.Millisecond))
	// A gauge func that returns NaN must not poison the export.
	reg.GaugeFunc("bad_gauge", func() float64 { return math.NaN() })

	c, clk := newTestCollector(reg, 16)
	for i := 0; i < 3; i++ {
		c.SampleOnce()
		clk.advance(time.Second)
	}

	hist := c.History(HistoryOpts{MaxSamples: 10})
	data, err := json.Marshal(hist)
	if err != nil {
		t.Fatalf("history JSON marshal failed: %v", err)
	}
	s := string(data)
	for _, want := range []string{`mlb_ingress_total`, `mlb_headroom`, `span_duration_seconds`} {
		if !strings.Contains(s, want) {
			t.Fatalf("history missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "NaN") {
		t.Fatalf("history leaked NaN:\n%s", s)
	}

	// Prefix filter.
	hist = c.History(HistoryOpts{Prefix: "mlb_"})
	for _, sr := range hist.Series {
		if !strings.HasPrefix(sr.ID, "mlb_") {
			t.Fatalf("prefix filter leaked %q", sr.ID)
		}
	}
	if len(hist.Series) != 2 {
		t.Fatalf("prefix filter kept %d series, want 2", len(hist.Series))
	}
}

func TestHistoryHTTPEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a_total").Add(3)
	c, clk := newTestCollector(reg, 8)
	c.SampleOnce()
	clk.advance(time.Second)
	c.SampleOnce()

	mux := httptest.NewServer(mustMux(c))
	defer mux.Close()

	resp, err := mux.Client().Get(mux.URL + HistoryPath + "?samples=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hist History
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if hist.Retained != 2 || len(hist.Series) != 1 || hist.Series[0].ID != "a_total" {
		t.Fatalf("unexpected history body: %+v", hist)
	}
	if len(hist.Series[0].Samples) != 2 {
		t.Fatalf("samples = %+v, want 2 points", hist.Series[0].Samples)
	}
}

func TestCollectorStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total").Inc()
	c := New(Config{Registry: reg, Interval: 5 * time.Millisecond, Retention: 32})
	c.Start()
	c.Start() // second Start is a no-op, not a second loop
	deadline := time.Now().Add(2 * time.Second)
	for c.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	if c.Samples() < 3 {
		t.Fatalf("background collector took %d samples, want ≥3", c.Samples())
	}
	n := c.Samples()
	time.Sleep(30 * time.Millisecond)
	if c.Samples() != n {
		t.Fatal("collector kept sampling after Stop")
	}
	c.Stop() // idempotent
}
