package s11

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the S11 (GTP-C-like) decoder: no panics on
// arbitrary input; accepted messages re-encode stably.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&CreateSessionRequest{IMSI: 123456789012345, MMETEID: 0x10001, APN: "internet", BearerID: 5},
		&CreateSessionResponse{Cause: CauseAccepted, SGWTEID: 0x20001, PDNAddr: 0x0A000001, BearerID: 5},
		&ModifyBearerRequest{SGWTEID: 0x20001, ENBTEID: 0x30001, ENBAddr: "enb-7:2152", BearerID: 5},
		&ModifyBearerResponse{Cause: CauseAccepted},
		&ReleaseAccessBearersRequest{SGWTEID: 0x20001},
		&DeleteSessionRequest{SGWTEID: 0x20001, BearerID: 5},
		&DownlinkDataNotification{SGWTEID: 0x20001, MMETEID: 0x10001},
		&DownlinkDataNotificationAck{Cause: CauseAccepted},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, Marshal(m2)) {
			t.Fatalf("marshal not stable: % x vs % x", re, Marshal(m2))
		}
	})
}
