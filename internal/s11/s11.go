// Package s11 implements a GTP-C-like codec for the S11 interface
// between the MME and the Serving Gateway (3GPP TS 29.274, simplified):
// session (default bearer) creation and deletion, bearer modification on
// idle↔active transitions and handovers, and downlink data notification,
// which triggers paging.
package s11

import (
	"errors"
	"fmt"

	"scale/internal/wire"
)

// MessageType tags an S11 message on the wire.
type MessageType uint8

// S11 message types.
const (
	TypeCreateSessionRequest MessageType = iota + 1
	TypeCreateSessionResponse
	TypeModifyBearerRequest
	TypeModifyBearerResponse
	TypeReleaseAccessBearersRequest
	TypeReleaseAccessBearersResponse
	TypeDeleteSessionRequest
	TypeDeleteSessionResponse
	TypeDownlinkDataNotification
	TypeDownlinkDataNotificationAck
)

// String names the message type.
func (t MessageType) String() string {
	names := [...]string{
		TypeCreateSessionRequest:         "CreateSessionRequest",
		TypeCreateSessionResponse:        "CreateSessionResponse",
		TypeModifyBearerRequest:          "ModifyBearerRequest",
		TypeModifyBearerResponse:         "ModifyBearerResponse",
		TypeReleaseAccessBearersRequest:  "ReleaseAccessBearersRequest",
		TypeReleaseAccessBearersResponse: "ReleaseAccessBearersResponse",
		TypeDeleteSessionRequest:         "DeleteSessionRequest",
		TypeDeleteSessionResponse:        "DeleteSessionResponse",
		TypeDownlinkDataNotification:     "DownlinkDataNotification",
		TypeDownlinkDataNotificationAck:  "DownlinkDataNotificationAck",
	}
	if int(t) < len(names) && names[t] != "" {
		return names[t]
	}
	return fmt.Sprintf("s11.MessageType(%d)", uint8(t))
}

// Cause codes.
const (
	CauseAccepted        uint8 = 16
	CauseContextNotFound uint8 = 64
	CauseNoResources     uint8 = 73
)

// Errors returned by Unmarshal.
var (
	ErrUnknownType = errors.New("s11: unknown message type")
	ErrEmpty       = errors.New("s11: empty message")
)

// Message is a decoded S11 message.
type Message interface {
	Type() MessageType
	marshal(w *wire.Writer)
	unmarshal(r *wire.Reader)
}

// Marshal encodes m with its type tag.
func Marshal(m Message) []byte {
	w := wire.NewWriter(64)
	w.U8(uint8(m.Type()))
	m.marshal(w)
	return w.Bytes()
}

// Unmarshal decodes an S11 message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrEmpty
	}
	m := newMessage(MessageType(b[0]))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[0])
	}
	r := wire.NewReader(b[1:])
	m.unmarshal(r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("s11: decode %s: %w", m.Type(), err)
	}
	return m, nil
}

func newMessage(t MessageType) Message {
	switch t {
	case TypeCreateSessionRequest:
		return &CreateSessionRequest{}
	case TypeCreateSessionResponse:
		return &CreateSessionResponse{}
	case TypeModifyBearerRequest:
		return &ModifyBearerRequest{}
	case TypeModifyBearerResponse:
		return &ModifyBearerResponse{}
	case TypeReleaseAccessBearersRequest:
		return &ReleaseAccessBearersRequest{}
	case TypeReleaseAccessBearersResponse:
		return &ReleaseAccessBearersResponse{}
	case TypeDeleteSessionRequest:
		return &DeleteSessionRequest{}
	case TypeDeleteSessionResponse:
		return &DeleteSessionResponse{}
	case TypeDownlinkDataNotification:
		return &DownlinkDataNotification{}
	case TypeDownlinkDataNotificationAck:
		return &DownlinkDataNotificationAck{}
	default:
		return nil
	}
}

// CreateSessionRequest establishes the default bearer for a device
// during attach. MMETEID embeds the owning MMP id (package ueid), the
// S11-side analogue of the S1AP id embedding.
type CreateSessionRequest struct {
	IMSI     uint64
	MMETEID  uint32 // MME-side tunnel endpoint for this session
	APN      string
	BearerID uint8
}

// Type implements Message.
func (*CreateSessionRequest) Type() MessageType { return TypeCreateSessionRequest }

func (m *CreateSessionRequest) marshal(w *wire.Writer) {
	w.U64(m.IMSI)
	w.U32(m.MMETEID)
	w.String16(m.APN)
	w.U8(m.BearerID)
}

func (m *CreateSessionRequest) unmarshal(r *wire.Reader) {
	m.IMSI = r.U64()
	m.MMETEID = r.U32()
	m.APN = r.String16()
	m.BearerID = r.U8()
}

// CreateSessionResponse returns the S-GW tunnel endpoint and the
// device's PDN address.
type CreateSessionResponse struct {
	Cause    uint8
	SGWTEID  uint32
	PDNAddr  uint32 // IPv4 address assigned to the device
	BearerID uint8
}

// Type implements Message.
func (*CreateSessionResponse) Type() MessageType { return TypeCreateSessionResponse }

func (m *CreateSessionResponse) marshal(w *wire.Writer) {
	w.U8(m.Cause)
	w.U32(m.SGWTEID)
	w.U32(m.PDNAddr)
	w.U8(m.BearerID)
}

func (m *CreateSessionResponse) unmarshal(r *wire.Reader) {
	m.Cause = r.U8()
	m.SGWTEID = r.U32()
	m.PDNAddr = r.U32()
	m.BearerID = r.U8()
}

// ModifyBearerRequest points the S-GW's downlink at a (new) eNodeB
// tunnel endpoint: sent on Idle→Active and at handover completion.
type ModifyBearerRequest struct {
	SGWTEID  uint32
	ENBTEID  uint32
	ENBAddr  string
	BearerID uint8
}

// Type implements Message.
func (*ModifyBearerRequest) Type() MessageType { return TypeModifyBearerRequest }

func (m *ModifyBearerRequest) marshal(w *wire.Writer) {
	w.U32(m.SGWTEID)
	w.U32(m.ENBTEID)
	w.String16(m.ENBAddr)
	w.U8(m.BearerID)
}

func (m *ModifyBearerRequest) unmarshal(r *wire.Reader) {
	m.SGWTEID = r.U32()
	m.ENBTEID = r.U32()
	m.ENBAddr = r.String16()
	m.BearerID = r.U8()
}

// ModifyBearerResponse acknowledges the modification.
type ModifyBearerResponse struct {
	Cause uint8
}

// Type implements Message.
func (*ModifyBearerResponse) Type() MessageType { return TypeModifyBearerResponse }

func (m *ModifyBearerResponse) marshal(w *wire.Writer)   { w.U8(m.Cause) }
func (m *ModifyBearerResponse) unmarshal(r *wire.Reader) { m.Cause = r.U8() }

// ReleaseAccessBearersRequest tears down the radio-side path on
// Active→Idle; the session itself survives.
type ReleaseAccessBearersRequest struct {
	SGWTEID uint32
}

// Type implements Message.
func (*ReleaseAccessBearersRequest) Type() MessageType { return TypeReleaseAccessBearersRequest }

func (m *ReleaseAccessBearersRequest) marshal(w *wire.Writer)   { w.U32(m.SGWTEID) }
func (m *ReleaseAccessBearersRequest) unmarshal(r *wire.Reader) { m.SGWTEID = r.U32() }

// ReleaseAccessBearersResponse acknowledges the release.
type ReleaseAccessBearersResponse struct {
	Cause uint8
}

// Type implements Message.
func (*ReleaseAccessBearersResponse) Type() MessageType { return TypeReleaseAccessBearersResponse }

func (m *ReleaseAccessBearersResponse) marshal(w *wire.Writer)   { w.U8(m.Cause) }
func (m *ReleaseAccessBearersResponse) unmarshal(r *wire.Reader) { m.Cause = r.U8() }

// DeleteSessionRequest removes the device's session entirely (detach).
type DeleteSessionRequest struct {
	SGWTEID  uint32
	BearerID uint8
}

// Type implements Message.
func (*DeleteSessionRequest) Type() MessageType { return TypeDeleteSessionRequest }

func (m *DeleteSessionRequest) marshal(w *wire.Writer) {
	w.U32(m.SGWTEID)
	w.U8(m.BearerID)
}

func (m *DeleteSessionRequest) unmarshal(r *wire.Reader) {
	m.SGWTEID = r.U32()
	m.BearerID = r.U8()
}

// DeleteSessionResponse acknowledges deletion.
type DeleteSessionResponse struct {
	Cause uint8
}

// Type implements Message.
func (*DeleteSessionResponse) Type() MessageType { return TypeDeleteSessionResponse }

func (m *DeleteSessionResponse) marshal(w *wire.Writer)   { w.U8(m.Cause) }
func (m *DeleteSessionResponse) unmarshal(r *wire.Reader) { m.Cause = r.U8() }

// DownlinkDataNotification tells the MME that downlink packets arrived
// for an Idle device; the MME responds by paging it.
type DownlinkDataNotification struct {
	SGWTEID uint32
	MMETEID uint32
}

// Type implements Message.
func (*DownlinkDataNotification) Type() MessageType { return TypeDownlinkDataNotification }

func (m *DownlinkDataNotification) marshal(w *wire.Writer) {
	w.U32(m.SGWTEID)
	w.U32(m.MMETEID)
}

func (m *DownlinkDataNotification) unmarshal(r *wire.Reader) {
	m.SGWTEID = r.U32()
	m.MMETEID = r.U32()
}

// DownlinkDataNotificationAck acknowledges the notification.
type DownlinkDataNotificationAck struct {
	Cause uint8
}

// Type implements Message.
func (*DownlinkDataNotificationAck) Type() MessageType { return TypeDownlinkDataNotificationAck }

func (m *DownlinkDataNotificationAck) marshal(w *wire.Writer)   { w.U8(m.Cause) }
func (m *DownlinkDataNotificationAck) unmarshal(r *wire.Reader) { m.Cause = r.U8() }
