package s11

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&CreateSessionRequest{IMSI: 123456789, MMETEID: 0x01000001, APN: "internet", BearerID: 5},
		&CreateSessionResponse{Cause: CauseAccepted, SGWTEID: 42, PDNAddr: 0x0A000001, BearerID: 5},
		&ModifyBearerRequest{SGWTEID: 42, ENBTEID: 77, ENBAddr: "10.1.0.1:2152", BearerID: 5},
		&ModifyBearerResponse{Cause: CauseAccepted},
		&ReleaseAccessBearersRequest{SGWTEID: 42},
		&ReleaseAccessBearersResponse{Cause: CauseAccepted},
		&DeleteSessionRequest{SGWTEID: 42, BearerID: 5},
		&DeleteSessionResponse{Cause: CauseContextNotFound},
		&DownlinkDataNotification{SGWTEID: 42, MMETEID: 0x01000001},
		&DownlinkDataNotificationAck{Cause: CauseAccepted},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("unmarshal %s: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %s: got %+v want %+v", m.Type(), got, m)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrEmpty {
		t.Fatalf("empty = %v", err)
	}
	if _, err := Unmarshal([]byte{200}); err == nil {
		t.Fatal("unknown type accepted")
	}
	b := Marshal(&CreateSessionRequest{IMSI: 1, APN: "x"})
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := Unmarshal(append(Marshal(&ModifyBearerResponse{}), 1)); err == nil {
		t.Fatal("trailing accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := TypeCreateSessionRequest; ty <= TypeDownlinkDataNotificationAck; ty++ {
		if s := ty.String(); s == "" || s[0] == 's' {
			t.Fatalf("type %d String = %q", ty, s)
		}
	}
	if MessageType(77).String() != "s11.MessageType(77)" {
		t.Fatal("unknown String")
	}
}

func TestCreateSessionProperty(t *testing.T) {
	f := func(imsi uint64, teid uint32, apn string, ebi uint8) bool {
		if len(apn) > 1<<15 {
			return true
		}
		m := &CreateSessionRequest{IMSI: imsi, MMETEID: teid, APN: apn, BearerID: ebi}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
