package s1ap

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the S1AP decoder: no panics on arbitrary input;
// accepted messages re-encode stably.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&S1SetupRequest{ENBID: 1, Name: "enb", TAIs: []uint16{7}},
		&InitialUEMessage{ENBUEID: 2, TAI: 7, NASPDU: []byte{1, 2, 3}},
		&UplinkNASTransport{ENBUEID: 2, MMEUEID: 3, NASPDU: []byte{4}},
		&InitialContextSetupRequest{ENBUEID: 2, MMEUEID: 3, SGWTEID: 4, SGWAddr: "sgw:1"},
		&Paging{MTMSI: 5, TAIs: []uint16{7, 8}},
		&HandoverRequired{ENBUEID: 2, MMEUEID: 3, TargetENB: 9},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := Marshal(m)
		if _, err := Unmarshal(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		m2, _ := Unmarshal(re)
		if !bytes.Equal(re, Marshal(m2)) {
			t.Fatal("marshal not stable")
		}
	})
}
