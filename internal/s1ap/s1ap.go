// Package s1ap implements an S1AP-like codec: the control protocol
// between eNodeBs and the MME on the S1-MME interface (3GPP TS 36.413,
// simplified).
//
// The procedures modeled are the ones the paper's experiments exercise:
// S1 Setup, initial/uplink/downlink NAS transport, initial context setup
// (bearer establishment toward the eNodeB), UE context release
// (Active→Idle), paging, and the S1 handover sequence. NAS PDUs ride
// opaquely inside transport messages exactly as in real S1AP.
package s1ap

import (
	"errors"
	"fmt"

	"scale/internal/wire"
)

// MessageType tags an S1AP message on the wire.
type MessageType uint8

// S1AP message types.
const (
	TypeS1SetupRequest MessageType = iota + 1
	TypeS1SetupResponse
	TypeInitialUEMessage
	TypeUplinkNASTransport
	TypeDownlinkNASTransport
	TypeInitialContextSetupRequest
	TypeInitialContextSetupResponse
	TypeUEContextReleaseCommand
	TypeUEContextReleaseComplete
	TypePaging
	TypeHandoverRequired
	TypeHandoverRequest
	TypeHandoverRequestAck
	TypeHandoverCommand
	TypeHandoverNotify
	TypeOverloadStart
	TypeOverloadStop
	TypeUEContextReleaseRequest
)

// String names the message type.
func (t MessageType) String() string {
	names := [...]string{
		TypeS1SetupRequest:              "S1SetupRequest",
		TypeS1SetupResponse:             "S1SetupResponse",
		TypeInitialUEMessage:            "InitialUEMessage",
		TypeUplinkNASTransport:          "UplinkNASTransport",
		TypeDownlinkNASTransport:        "DownlinkNASTransport",
		TypeInitialContextSetupRequest:  "InitialContextSetupRequest",
		TypeInitialContextSetupResponse: "InitialContextSetupResponse",
		TypeUEContextReleaseCommand:     "UEContextReleaseCommand",
		TypeUEContextReleaseComplete:    "UEContextReleaseComplete",
		TypePaging:                      "Paging",
		TypeHandoverRequired:            "HandoverRequired",
		TypeHandoverRequest:             "HandoverRequest",
		TypeHandoverRequestAck:          "HandoverRequestAck",
		TypeHandoverCommand:             "HandoverCommand",
		TypeHandoverNotify:              "HandoverNotify",
		TypeOverloadStart:               "OverloadStart",
		TypeOverloadStop:                "OverloadStop",
		TypeUEContextReleaseRequest:     "UEContextReleaseRequest",
	}
	if int(t) < len(names) && names[t] != "" {
		return names[t]
	}
	return fmt.Sprintf("s1ap.MessageType(%d)", uint8(t))
}

// Errors returned by Unmarshal.
var (
	ErrUnknownType = errors.New("s1ap: unknown message type")
	ErrEmpty       = errors.New("s1ap: empty message")
)

// Message is a decoded S1AP message.
type Message interface {
	Type() MessageType
	marshal(w *wire.Writer)
	unmarshal(r *wire.Reader)
}

// Marshal encodes m with its type tag.
func Marshal(m Message) []byte {
	w := wire.NewWriter(96)
	MarshalTo(w, m)
	return w.Bytes()
}

// MarshalTo encodes m with its type tag into w. Hot paths pair it with
// the wire package's writer pool to keep encoding allocation-free.
func MarshalTo(w *wire.Writer, m Message) {
	w.U8(uint8(m.Type()))
	m.marshal(w)
}

// Unmarshal decodes an S1AP message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrEmpty
	}
	m := newMessage(MessageType(b[0]))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[0])
	}
	r := wire.NewReader(b[1:])
	m.unmarshal(r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("s1ap: decode %s: %w", m.Type(), err)
	}
	return m, nil
}

func newMessage(t MessageType) Message {
	switch t {
	case TypeS1SetupRequest:
		return &S1SetupRequest{}
	case TypeS1SetupResponse:
		return &S1SetupResponse{}
	case TypeInitialUEMessage:
		return &InitialUEMessage{}
	case TypeUplinkNASTransport:
		return &UplinkNASTransport{}
	case TypeDownlinkNASTransport:
		return &DownlinkNASTransport{}
	case TypeInitialContextSetupRequest:
		return &InitialContextSetupRequest{}
	case TypeInitialContextSetupResponse:
		return &InitialContextSetupResponse{}
	case TypeUEContextReleaseCommand:
		return &UEContextReleaseCommand{}
	case TypeUEContextReleaseComplete:
		return &UEContextReleaseComplete{}
	case TypePaging:
		return &Paging{}
	case TypeHandoverRequired:
		return &HandoverRequired{}
	case TypeHandoverRequest:
		return &HandoverRequest{}
	case TypeHandoverRequestAck:
		return &HandoverRequestAck{}
	case TypeHandoverCommand:
		return &HandoverCommand{}
	case TypeHandoverNotify:
		return &HandoverNotify{}
	case TypeOverloadStart:
		return &OverloadStart{}
	case TypeOverloadStop:
		return &OverloadStop{}
	case TypeUEContextReleaseRequest:
		return &UEContextReleaseRequest{}
	default:
		return nil
	}
}

func putU16List(w *wire.Writer, list []uint16) {
	w.U16(uint16(len(list)))
	for _, v := range list {
		w.U16(v)
	}
}

func getU16List(r *wire.Reader) []uint16 {
	n := int(r.U16())
	if n == 0 {
		return nil
	}
	if n > r.Remaining()/2 {
		_ = r.Raw(r.Remaining() + 1) // poison: declared more than present
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = r.U16()
	}
	return out
}

// S1SetupRequest is sent by an eNodeB when it connects to an MME.
type S1SetupRequest struct {
	ENBID uint32
	Name  string
	TAIs  []uint16 // tracking areas served by this eNodeB
}

// Type implements Message.
func (*S1SetupRequest) Type() MessageType { return TypeS1SetupRequest }

func (m *S1SetupRequest) marshal(w *wire.Writer) {
	w.U32(m.ENBID)
	w.String16(m.Name)
	putU16List(w, m.TAIs)
}

func (m *S1SetupRequest) unmarshal(r *wire.Reader) {
	m.ENBID = r.U32()
	m.Name = r.String16()
	m.TAIs = getU16List(r)
}

// S1SetupResponse acknowledges the eNodeB. RelativeCapacity is the MME
// weight factor eNodeBs use for load-spreading in legacy pools —
// precisely the static knob Section 3.1 calls out as inadequate.
type S1SetupResponse struct {
	MMEName          string
	ServedMMEGIs     []uint16
	RelativeCapacity uint8
}

// Type implements Message.
func (*S1SetupResponse) Type() MessageType { return TypeS1SetupResponse }

func (m *S1SetupResponse) marshal(w *wire.Writer) {
	w.String16(m.MMEName)
	putU16List(w, m.ServedMMEGIs)
	w.U8(m.RelativeCapacity)
}

func (m *S1SetupResponse) unmarshal(r *wire.Reader) {
	m.MMEName = r.String16()
	m.ServedMMEGIs = getU16List(r)
	m.RelativeCapacity = r.U8()
}

// RRC establishment causes carried in InitialUEMessage (TS 36.413
// §9.2.1.3a). Overload control classifies new signaling by them:
// OverloadStart shedding never touches emergency, high-priority or
// mt-access (paging response) requests. The zero value is ordinary
// mobile-originated data so pre-existing senders stay sheddable.
const (
	EstabMOData       uint8 = 0
	EstabMOSignalling uint8 = 1
	EstabMTAccess     uint8 = 2
	EstabEmergency    uint8 = 3
	EstabHighPriority uint8 = 4
)

// InitialUEMessage carries the first NAS PDU of a UE transaction (e.g.
// an AttachRequest or ServiceRequest) from the eNodeB to the MME.
type InitialUEMessage struct {
	ENBUEID uint32 // eNodeB-assigned per-UE S1AP id
	TAI     uint16
	// EstabCause is the RRC establishment cause (Estab* constants); the
	// overload-control path uses it to exempt priority traffic.
	EstabCause uint8
	NASPDU     []byte
}

// Type implements Message.
func (*InitialUEMessage) Type() MessageType { return TypeInitialUEMessage }

func (m *InitialUEMessage) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U16(m.TAI)
	w.U8(m.EstabCause)
	w.Bytes16(m.NASPDU)
}

func (m *InitialUEMessage) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.TAI = r.U16()
	m.EstabCause = r.U8()
	m.NASPDU = r.Bytes16()
}

// UplinkNASTransport carries subsequent NAS PDUs for an established UE
// context. MMEUEID embeds the owning MMP (package ueid), which is how
// the MLB routes Active-mode traffic without per-device tables.
type UplinkNASTransport struct {
	ENBUEID uint32
	MMEUEID uint32
	NASPDU  []byte
}

// Type implements Message.
func (*UplinkNASTransport) Type() MessageType { return TypeUplinkNASTransport }

func (m *UplinkNASTransport) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.Bytes16(m.NASPDU)
}

func (m *UplinkNASTransport) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.NASPDU = r.Bytes16()
}

// DownlinkNASTransport carries NAS PDUs from the MME to the UE.
type DownlinkNASTransport struct {
	ENBUEID uint32
	MMEUEID uint32
	NASPDU  []byte
}

// Type implements Message.
func (*DownlinkNASTransport) Type() MessageType { return TypeDownlinkNASTransport }

func (m *DownlinkNASTransport) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.Bytes16(m.NASPDU)
}

func (m *DownlinkNASTransport) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.NASPDU = r.Bytes16()
}

// InitialContextSetupRequest instructs the eNodeB to establish the
// radio-side bearer toward the S-GW.
type InitialContextSetupRequest struct {
	ENBUEID  uint32
	MMEUEID  uint32
	SGWTEID  uint32
	SGWAddr  string
	KeyENB   [32]byte // derived radio security key
	BearerID uint8
}

// Type implements Message.
func (*InitialContextSetupRequest) Type() MessageType { return TypeInitialContextSetupRequest }

func (m *InitialContextSetupRequest) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.U32(m.SGWTEID)
	w.String16(m.SGWAddr)
	w.Raw(m.KeyENB[:])
	w.U8(m.BearerID)
}

func (m *InitialContextSetupRequest) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.SGWTEID = r.U32()
	m.SGWAddr = r.String16()
	copy(m.KeyENB[:], r.Raw(32))
	m.BearerID = r.U8()
}

// InitialContextSetupResponse confirms bearer establishment and carries
// the eNodeB-side tunnel endpoint.
type InitialContextSetupResponse struct {
	ENBUEID uint32
	MMEUEID uint32
	ENBTEID uint32
}

// Type implements Message.
func (*InitialContextSetupResponse) Type() MessageType { return TypeInitialContextSetupResponse }

func (m *InitialContextSetupResponse) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.U32(m.ENBTEID)
}

func (m *InitialContextSetupResponse) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.ENBTEID = r.U32()
}

// UEContextReleaseCommand tears down the UE's S1 context
// (Active→Idle).
type UEContextReleaseCommand struct {
	ENBUEID uint32
	MMEUEID uint32
	Cause   uint8
}

// Type implements Message.
func (*UEContextReleaseCommand) Type() MessageType { return TypeUEContextReleaseCommand }

func (m *UEContextReleaseCommand) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.U8(m.Cause)
}

func (m *UEContextReleaseCommand) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.Cause = r.U8()
}

// UEContextReleaseComplete acknowledges the release.
type UEContextReleaseComplete struct {
	ENBUEID uint32
	MMEUEID uint32
}

// Type implements Message.
func (*UEContextReleaseComplete) Type() MessageType { return TypeUEContextReleaseComplete }

func (m *UEContextReleaseComplete) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
}

func (m *UEContextReleaseComplete) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
}

// Paging wakes an Idle device: broadcast to every eNodeB serving the
// device's tracking areas.
type Paging struct {
	MTMSI uint32
	TAIs  []uint16
}

// Type implements Message.
func (*Paging) Type() MessageType { return TypePaging }

func (m *Paging) marshal(w *wire.Writer) {
	w.U32(m.MTMSI)
	putU16List(w, m.TAIs)
}

func (m *Paging) unmarshal(r *wire.Reader) {
	m.MTMSI = r.U32()
	m.TAIs = getU16List(r)
}

// HandoverRequired starts an S1 handover: the source eNodeB asks the MME
// to move the UE to the target eNodeB.
type HandoverRequired struct {
	ENBUEID   uint32
	MMEUEID   uint32
	TargetENB uint32
}

// Type implements Message.
func (*HandoverRequired) Type() MessageType { return TypeHandoverRequired }

func (m *HandoverRequired) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.U32(m.TargetENB)
}

func (m *HandoverRequired) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.TargetENB = r.U32()
}

// HandoverRequest asks the target eNodeB to admit the UE.
type HandoverRequest struct {
	MMEUEID  uint32
	SGWTEID  uint32
	BearerID uint8
}

// Type implements Message.
func (*HandoverRequest) Type() MessageType { return TypeHandoverRequest }

func (m *HandoverRequest) marshal(w *wire.Writer) {
	w.U32(m.MMEUEID)
	w.U32(m.SGWTEID)
	w.U8(m.BearerID)
}

func (m *HandoverRequest) unmarshal(r *wire.Reader) {
	m.MMEUEID = r.U32()
	m.SGWTEID = r.U32()
	m.BearerID = r.U8()
}

// HandoverRequestAck is the target eNodeB's admission, with its new
// per-UE id and tunnel endpoint.
type HandoverRequestAck struct {
	MMEUEID    uint32
	NewENBUEID uint32
	ENBTEID    uint32
}

// Type implements Message.
func (*HandoverRequestAck) Type() MessageType { return TypeHandoverRequestAck }

func (m *HandoverRequestAck) marshal(w *wire.Writer) {
	w.U32(m.MMEUEID)
	w.U32(m.NewENBUEID)
	w.U32(m.ENBTEID)
}

func (m *HandoverRequestAck) unmarshal(r *wire.Reader) {
	m.MMEUEID = r.U32()
	m.NewENBUEID = r.U32()
	m.ENBTEID = r.U32()
}

// HandoverCommand tells the source eNodeB to execute the handover.
type HandoverCommand struct {
	ENBUEID uint32
	MMEUEID uint32
}

// Type implements Message.
func (*HandoverCommand) Type() MessageType { return TypeHandoverCommand }

func (m *HandoverCommand) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
}

func (m *HandoverCommand) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
}

// HandoverNotify is the target eNodeB's confirmation that the UE has
// arrived.
type HandoverNotify struct {
	ENBUEID uint32
	MMEUEID uint32
	TAI     uint16
}

// Type implements Message.
func (*HandoverNotify) Type() MessageType { return TypeHandoverNotify }

func (m *HandoverNotify) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.U16(m.TAI)
}

func (m *HandoverNotify) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.TAI = r.U16()
}

// UEContextReleaseRequest is the eNodeB's request to release an
// inactive UE's S1 context — the trigger for the Active→Idle
// transition (and hence for SCALE's replica refresh).
type UEContextReleaseRequest struct {
	ENBUEID uint32
	MMEUEID uint32
	Cause   uint8
}

// Type implements Message.
func (*UEContextReleaseRequest) Type() MessageType { return TypeUEContextReleaseRequest }

func (m *UEContextReleaseRequest) marshal(w *wire.Writer) {
	w.U32(m.ENBUEID)
	w.U32(m.MMEUEID)
	w.U8(m.Cause)
}

func (m *UEContextReleaseRequest) unmarshal(r *wire.Reader) {
	m.ENBUEID = r.U32()
	m.MMEUEID = r.U32()
	m.Cause = r.U8()
}

// OverloadStart asks eNodeBs to throttle traffic toward an overloaded
// MME — the reactive 3GPP mechanism the baseline uses.
type OverloadStart struct {
	TrafficLoadReduction uint8 // percentage 0-100
}

// Type implements Message.
func (*OverloadStart) Type() MessageType { return TypeOverloadStart }

func (m *OverloadStart) marshal(w *wire.Writer)   { w.U8(m.TrafficLoadReduction) }
func (m *OverloadStart) unmarshal(r *wire.Reader) { m.TrafficLoadReduction = r.U8() }

// OverloadStop ends throttling.
type OverloadStop struct{}

// Type implements Message.
func (*OverloadStop) Type() MessageType { return TypeOverloadStop }

func (*OverloadStop) marshal(*wire.Writer)   {}
func (*OverloadStop) unmarshal(*wire.Reader) {}
