package s1ap

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&S1SetupRequest{ENBID: 100, Name: "enb-100", TAIs: []uint16{1, 2}},
		&S1SetupRequest{ENBID: 1}, // empty name/TAIs
		&S1SetupResponse{MMEName: "mlb-1", ServedMMEGIs: []uint16{0x0101}, RelativeCapacity: 200},
		&InitialUEMessage{ENBUEID: 7, TAI: 3, NASPDU: []byte{1, 2, 3}},
		&InitialUEMessage{ENBUEID: 8, TAI: 3, EstabCause: EstabMTAccess, NASPDU: []byte{9}},
		&InitialUEMessage{ENBUEID: 9, TAI: 4, EstabCause: EstabEmergency, NASPDU: []byte{8}},
		&UplinkNASTransport{ENBUEID: 7, MMEUEID: 0x01000009, NASPDU: []byte{4}},
		&DownlinkNASTransport{ENBUEID: 7, MMEUEID: 9, NASPDU: []byte{5, 6}},
		&InitialContextSetupRequest{ENBUEID: 7, MMEUEID: 9, SGWTEID: 11, SGWAddr: "10.0.0.2:2123", KeyENB: [32]byte{1}, BearerID: 5},
		&InitialContextSetupResponse{ENBUEID: 7, MMEUEID: 9, ENBTEID: 12},
		&UEContextReleaseCommand{ENBUEID: 7, MMEUEID: 9, Cause: 1},
		&UEContextReleaseComplete{ENBUEID: 7, MMEUEID: 9},
		&Paging{MTMSI: 0xCAFE, TAIs: []uint16{3, 4, 5}},
		&HandoverRequired{ENBUEID: 7, MMEUEID: 9, TargetENB: 200},
		&HandoverRequest{MMEUEID: 9, SGWTEID: 11, BearerID: 5},
		&HandoverRequestAck{MMEUEID: 9, NewENBUEID: 77, ENBTEID: 13},
		&HandoverCommand{ENBUEID: 7, MMEUEID: 9},
		&HandoverNotify{ENBUEID: 77, MMEUEID: 9, TAI: 4},
		&OverloadStart{TrafficLoadReduction: 50},
		&OverloadStop{},
		&UEContextReleaseRequest{ENBUEID: 7, MMEUEID: 9, Cause: 2},
	}
	for _, m := range msgs {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %s:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrEmpty {
		t.Fatalf("empty = %v", err)
	}
	if _, err := Unmarshal([]byte{0xEE, 1, 2}); err == nil {
		t.Fatal("unknown type accepted")
	}
	b := Marshal(&Paging{MTMSI: 1, TAIs: []uint16{1}})
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := Unmarshal(append(Marshal(&OverloadStop{}), 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCorruptTAIListLength(t *testing.T) {
	b := Marshal(&Paging{MTMSI: 5, TAIs: []uint16{1}})
	// TAI count sits after type byte (1) + MTMSI (4).
	b[5], b[6] = 0x7F, 0xFF
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("corrupt list length accepted")
	}
}

func TestMessageTypeStrings(t *testing.T) {
	for ty := TypeS1SetupRequest; ty <= TypeUEContextReleaseRequest; ty++ {
		if s := ty.String(); s == "" || s[0] == 's' {
			t.Fatalf("type %d String = %q", ty, s)
		}
	}
	if MessageType(99).String() != "s1ap.MessageType(99)" {
		t.Fatal("unknown type String")
	}
}

func TestNASPDUIsolation(t *testing.T) {
	pdu := []byte{1, 2, 3}
	b := Marshal(&InitialUEMessage{ENBUEID: 1, NASPDU: pdu})
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] = 0xFF // mutate encoded buffer
	if got.(*InitialUEMessage).NASPDU[2] != 3 {
		t.Fatal("NASPDU aliases the input buffer")
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoundTripInitialUE(b *testing.B) {
	m := &InitialUEMessage{ENBUEID: 7, TAI: 3, NASPDU: make([]byte, 40)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(Marshal(m)); err != nil {
			b.Fatal(err)
		}
	}
}
