package s6

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the S6a decoder: no panics on arbitrary input;
// accepted messages re-encode stably. AuthInfoAnswer's vector count and
// the length-prefixed strings are the interesting attack surface.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&AuthInfoRequest{IMSI: 123456789012345, ServingNetwork: "310-026", NumVectors: 1},
		&AuthInfoAnswer{Result: ResultSuccess, Vectors: []AuthVector{
			{RAND: [16]byte{1}, AUTN: [16]byte{2}, XRES: [8]byte{3}},
		}},
		&UpdateLocationRequest{IMSI: 123456789012345, MMEID: "mmp-3"},
		&UpdateLocationAnswer{Result: ResultSuccess, Subscription: SubscriptionData{
			APN: "internet", AMBRUplink: 50000, AMBRDownlink: 100000, DefaultQCI: 9, T3412Sec: 3240,
		}},
		&PurgeRequest{IMSI: 123456789012345},
		&PurgeAnswer{Result: ResultSuccess},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xEE})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, Marshal(m2)) {
			t.Fatalf("marshal not stable: % x vs % x", re, Marshal(m2))
		}
	})
}
