// Package s6 implements an S6a-like codec: the protocol between the MME
// and the HSS (3GPP TS 29.272, simplified, carried over our transport
// instead of Diameter). It covers authentication-information retrieval
// (EPS-AKA vectors), location update during attach, and purge on detach.
package s6

import (
	"errors"
	"fmt"

	"scale/internal/nas"
	"scale/internal/wire"
)

// MessageType tags an S6a message on the wire.
type MessageType uint8

// S6a message types.
const (
	TypeAuthInfoRequest MessageType = iota + 1
	TypeAuthInfoAnswer
	TypeUpdateLocationRequest
	TypeUpdateLocationAnswer
	TypePurgeRequest
	TypePurgeAnswer
)

// String names the message type.
func (t MessageType) String() string {
	names := [...]string{
		TypeAuthInfoRequest:       "AuthInfoRequest",
		TypeAuthInfoAnswer:        "AuthInfoAnswer",
		TypeUpdateLocationRequest: "UpdateLocationRequest",
		TypeUpdateLocationAnswer:  "UpdateLocationAnswer",
		TypePurgeRequest:          "PurgeRequest",
		TypePurgeAnswer:           "PurgeAnswer",
	}
	if int(t) < len(names) && names[t] != "" {
		return names[t]
	}
	return fmt.Sprintf("s6.MessageType(%d)", uint8(t))
}

// Result codes.
const (
	ResultSuccess      uint8 = 0
	ResultUserUnknown  uint8 = 1
	ResultAuthRejected uint8 = 2
)

// Errors returned by Unmarshal.
var (
	ErrUnknownType = errors.New("s6: unknown message type")
	ErrEmpty       = errors.New("s6: empty message")
)

// maxVectors bounds an AuthInfoAnswer; real MMEs request a handful.
const maxVectors = 16

// Message is a decoded S6a message.
type Message interface {
	Type() MessageType
	marshal(w *wire.Writer)
	unmarshal(r *wire.Reader)
}

// Marshal encodes m with its type tag.
func Marshal(m Message) []byte {
	w := wire.NewWriter(128)
	w.U8(uint8(m.Type()))
	m.marshal(w)
	return w.Bytes()
}

// Unmarshal decodes an S6a message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrEmpty
	}
	m := newMessage(MessageType(b[0]))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[0])
	}
	r := wire.NewReader(b[1:])
	m.unmarshal(r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("s6: decode %s: %w", m.Type(), err)
	}
	return m, nil
}

func newMessage(t MessageType) Message {
	switch t {
	case TypeAuthInfoRequest:
		return &AuthInfoRequest{}
	case TypeAuthInfoAnswer:
		return &AuthInfoAnswer{}
	case TypeUpdateLocationRequest:
		return &UpdateLocationRequest{}
	case TypeUpdateLocationAnswer:
		return &UpdateLocationAnswer{}
	case TypePurgeRequest:
		return &PurgeRequest{}
	case TypePurgeAnswer:
		return &PurgeAnswer{}
	default:
		return nil
	}
}

// AuthVector is one EPS-AKA authentication vector: the challenge the MME
// forwards to the device plus the expected response and the derived
// K_ASME the MME keeps.
type AuthVector struct {
	RAND  [16]byte
	AUTN  [16]byte
	XRES  [8]byte
	KASME [nas.KeySize]byte
}

func (v *AuthVector) marshal(w *wire.Writer) {
	w.Raw(v.RAND[:])
	w.Raw(v.AUTN[:])
	w.Raw(v.XRES[:])
	w.Raw(v.KASME[:])
}

func (v *AuthVector) unmarshal(r *wire.Reader) {
	copy(v.RAND[:], r.Raw(16))
	copy(v.AUTN[:], r.Raw(16))
	copy(v.XRES[:], r.Raw(8))
	copy(v.KASME[:], r.Raw(nas.KeySize))
}

// AuthInfoRequest asks the HSS for authentication vectors.
type AuthInfoRequest struct {
	IMSI           uint64
	ServingNetwork string
	NumVectors     uint8
}

// Type implements Message.
func (*AuthInfoRequest) Type() MessageType { return TypeAuthInfoRequest }

func (m *AuthInfoRequest) marshal(w *wire.Writer) {
	w.U64(m.IMSI)
	w.String16(m.ServingNetwork)
	w.U8(m.NumVectors)
}

func (m *AuthInfoRequest) unmarshal(r *wire.Reader) {
	m.IMSI = r.U64()
	m.ServingNetwork = r.String16()
	m.NumVectors = r.U8()
}

// AuthInfoAnswer returns authentication vectors (empty on failure).
type AuthInfoAnswer struct {
	Result  uint8
	Vectors []AuthVector
}

// Type implements Message.
func (*AuthInfoAnswer) Type() MessageType { return TypeAuthInfoAnswer }

func (m *AuthInfoAnswer) marshal(w *wire.Writer) {
	w.U8(m.Result)
	if len(m.Vectors) > maxVectors {
		panic(fmt.Sprintf("s6: %d vectors exceeds maximum %d", len(m.Vectors), maxVectors))
	}
	w.U8(uint8(len(m.Vectors)))
	for i := range m.Vectors {
		m.Vectors[i].marshal(w)
	}
}

func (m *AuthInfoAnswer) unmarshal(r *wire.Reader) {
	m.Result = r.U8()
	n := int(r.U8())
	if n > maxVectors {
		_ = r.Raw(r.Remaining() + 1) // poison
		return
	}
	if n > 0 {
		m.Vectors = make([]AuthVector, n)
		for i := range m.Vectors {
			m.Vectors[i].unmarshal(r)
		}
	}
}

// SubscriptionData is the slice of the HSS profile the MME caches.
type SubscriptionData struct {
	APN          string
	AMBRUplink   uint32 // kbit/s
	AMBRDownlink uint32
	DefaultQCI   uint8
	T3412Sec     uint32 // periodic TAU timer to hand to the device
}

func (s *SubscriptionData) marshal(w *wire.Writer) {
	w.String16(s.APN)
	w.U32(s.AMBRUplink)
	w.U32(s.AMBRDownlink)
	w.U8(s.DefaultQCI)
	w.U32(s.T3412Sec)
}

func (s *SubscriptionData) unmarshal(r *wire.Reader) {
	s.APN = r.String16()
	s.AMBRUplink = r.U32()
	s.AMBRDownlink = r.U32()
	s.DefaultQCI = r.U8()
	s.T3412Sec = r.U32()
}

// UpdateLocationRequest registers this MME as serving the device.
type UpdateLocationRequest struct {
	IMSI  uint64
	MMEID string
}

// Type implements Message.
func (*UpdateLocationRequest) Type() MessageType { return TypeUpdateLocationRequest }

func (m *UpdateLocationRequest) marshal(w *wire.Writer) {
	w.U64(m.IMSI)
	w.String16(m.MMEID)
}

func (m *UpdateLocationRequest) unmarshal(r *wire.Reader) {
	m.IMSI = r.U64()
	m.MMEID = r.String16()
}

// UpdateLocationAnswer returns the subscription profile.
type UpdateLocationAnswer struct {
	Result       uint8
	Subscription SubscriptionData
}

// Type implements Message.
func (*UpdateLocationAnswer) Type() MessageType { return TypeUpdateLocationAnswer }

func (m *UpdateLocationAnswer) marshal(w *wire.Writer) {
	w.U8(m.Result)
	m.Subscription.marshal(w)
}

func (m *UpdateLocationAnswer) unmarshal(r *wire.Reader) {
	m.Result = r.U8()
	m.Subscription.unmarshal(r)
}

// PurgeRequest tells the HSS the device's state was deleted (detach).
type PurgeRequest struct {
	IMSI uint64
}

// Type implements Message.
func (*PurgeRequest) Type() MessageType { return TypePurgeRequest }

func (m *PurgeRequest) marshal(w *wire.Writer)   { w.U64(m.IMSI) }
func (m *PurgeRequest) unmarshal(r *wire.Reader) { m.IMSI = r.U64() }

// PurgeAnswer acknowledges a purge.
type PurgeAnswer struct {
	Result uint8
}

// Type implements Message.
func (*PurgeAnswer) Type() MessageType { return TypePurgeAnswer }

func (m *PurgeAnswer) marshal(w *wire.Writer)   { w.U8(m.Result) }
func (m *PurgeAnswer) unmarshal(r *wire.Reader) { m.Result = r.U8() }
