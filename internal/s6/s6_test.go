package s6

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&AuthInfoRequest{IMSI: 123456, ServingNetwork: "310-26", NumVectors: 2},
		&AuthInfoAnswer{Result: ResultSuccess, Vectors: []AuthVector{
			{RAND: [16]byte{1}, AUTN: [16]byte{2}, XRES: [8]byte{3}, KASME: [32]byte{4}},
			{RAND: [16]byte{5}},
		}},
		&AuthInfoAnswer{Result: ResultUserUnknown}, // no vectors
		&UpdateLocationRequest{IMSI: 123456, MMEID: "mlb-dc1"},
		&UpdateLocationAnswer{Result: ResultSuccess, Subscription: SubscriptionData{
			APN: "internet", AMBRUplink: 50000, AMBRDownlink: 150000, DefaultQCI: 9, T3412Sec: 3240,
		}},
		&PurgeRequest{IMSI: 123456},
		&PurgeAnswer{Result: ResultSuccess},
	}
	for _, m := range msgs {
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("unmarshal %s: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %s:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrEmpty {
		t.Fatalf("empty = %v", err)
	}
	if _, err := Unmarshal([]byte{222}); err == nil {
		t.Fatal("unknown type accepted")
	}
	b := Marshal(&AuthInfoRequest{IMSI: 1, ServingNetwork: "x", NumVectors: 1})
	if _, err := Unmarshal(b[:4]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestAuthInfoAnswerVectorBounds(t *testing.T) {
	// Corrupt vector count must error, not over-allocate.
	b := Marshal(&AuthInfoAnswer{Result: ResultSuccess, Vectors: []AuthVector{{}}})
	b[2] = 0xFF // count byte after type + result
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("oversized vector count accepted")
	}
	// Marshal-side bound enforced by panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on too many vectors")
		}
	}()
	Marshal(&AuthInfoAnswer{Vectors: make([]AuthVector, maxVectors+1)})
}

func TestTypeStrings(t *testing.T) {
	for ty := TypeAuthInfoRequest; ty <= TypePurgeAnswer; ty++ {
		if s := ty.String(); s == "" || s[0] == 's' {
			t.Fatalf("type %d String = %q", ty, s)
		}
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
