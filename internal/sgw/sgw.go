// Package sgw emulates the Serving Gateway's control plane: the S11 peer
// that anchors each device's data path. The MME creates a session at
// attach, re-points the downlink tunnel on Idle→Active transitions and
// handovers, releases access bearers on Active→Idle, and deletes the
// session at detach. The S-GW raises DownlinkDataNotification when
// downlink traffic arrives for an Idle device, which makes the MME page
// it.
package sgw

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scale/internal/s11"
	"scale/internal/transport"
)

// Session is one device's bearer context at the S-GW.
type Session struct {
	IMSI     uint64
	SGWTEID  uint32
	MMETEID  uint32
	BearerID uint8
	PDNAddr  uint32
	// ENBTEID/ENBAddr point the downlink at the serving eNodeB; zero
	// when the device is Idle (bearers released).
	ENBTEID uint32
	ENBAddr string
}

// Idle reports whether the session's radio-side path is torn down.
func (s *Session) Idle() bool { return s.ENBTEID == 0 }

// GW is the in-memory S-GW control-plane state. It is safe for
// concurrent use.
type GW struct {
	mu       sync.RWMutex
	byTEID   map[uint32]*Session
	nextTEID atomic.Uint32
	nextPDN  atomic.Uint32
}

// New returns an empty gateway.
func New() *GW {
	g := &GW{byTEID: make(map[uint32]*Session)}
	g.nextPDN.Store(0x0A000000) // 10.0.0.0/8 pool
	return g
}

// Len reports the number of active sessions.
func (g *GW) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byTEID)
}

// Session returns the session for an S-GW TEID.
func (g *GW) Session(teid uint32) (*Session, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.byTEID[teid]
	return s, ok
}

// Handle processes one decoded S11 request and returns the response.
func (g *GW) Handle(req s11.Message) s11.Message {
	switch m := req.(type) {
	case *s11.CreateSessionRequest:
		teid := g.nextTEID.Add(1)
		sess := &Session{
			IMSI:     m.IMSI,
			SGWTEID:  teid,
			MMETEID:  m.MMETEID,
			BearerID: m.BearerID,
			PDNAddr:  g.nextPDN.Add(1),
		}
		g.mu.Lock()
		g.byTEID[teid] = sess
		g.mu.Unlock()
		return &s11.CreateSessionResponse{
			Cause:    s11.CauseAccepted,
			SGWTEID:  teid,
			PDNAddr:  sess.PDNAddr,
			BearerID: m.BearerID,
		}
	case *s11.ModifyBearerRequest:
		g.mu.Lock()
		defer g.mu.Unlock()
		sess, ok := g.byTEID[m.SGWTEID]
		if !ok {
			return &s11.ModifyBearerResponse{Cause: s11.CauseContextNotFound}
		}
		sess.ENBTEID = m.ENBTEID
		sess.ENBAddr = m.ENBAddr
		return &s11.ModifyBearerResponse{Cause: s11.CauseAccepted}
	case *s11.ReleaseAccessBearersRequest:
		g.mu.Lock()
		defer g.mu.Unlock()
		sess, ok := g.byTEID[m.SGWTEID]
		if !ok {
			return &s11.ReleaseAccessBearersResponse{Cause: s11.CauseContextNotFound}
		}
		sess.ENBTEID = 0
		sess.ENBAddr = ""
		return &s11.ReleaseAccessBearersResponse{Cause: s11.CauseAccepted}
	case *s11.DeleteSessionRequest:
		g.mu.Lock()
		defer g.mu.Unlock()
		if _, ok := g.byTEID[m.SGWTEID]; !ok {
			return &s11.DeleteSessionResponse{Cause: s11.CauseContextNotFound}
		}
		delete(g.byTEID, m.SGWTEID)
		return &s11.DeleteSessionResponse{Cause: s11.CauseAccepted}
	case *s11.DownlinkDataNotificationAck:
		return &s11.DownlinkDataNotificationAck{Cause: s11.CauseAccepted}
	default:
		return &s11.DeleteSessionResponse{Cause: s11.CauseContextNotFound}
	}
}

// DownlinkDataArrived simulates downlink packets for an Idle device,
// returning the notification the S-GW would send the MME, or false if
// the session is unknown or Active (data flows directly).
func (g *GW) DownlinkDataArrived(teid uint32) (*s11.DownlinkDataNotification, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	sess, ok := g.byTEID[teid]
	if !ok || !sess.Idle() {
		return nil, false
	}
	return &s11.DownlinkDataNotification{SGWTEID: teid, MMETEID: sess.MMETEID}, true
}

// Server exposes the gateway over the S11 RPC transport.
type Server struct {
	GW  *GW
	srv *transport.Server
}

// Serve starts an S-GW server on addr.
func Serve(addr string, gw *GW) (*Server, error) {
	srv, err := transport.ServeRPC(addr, func(payload []byte) []byte {
		req, err := s11.Unmarshal(payload)
		if err != nil {
			return s11.Marshal(&s11.DeleteSessionResponse{Cause: s11.CauseContextNotFound})
		}
		return s11.Marshal(gw.Handle(req))
	})
	if err != nil {
		return nil, err
	}
	return &Server{GW: gw, srv: srv}, nil
}

// Addr reports the listen address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Client is an S11 client for MMPs.
type Client struct {
	caller *transport.Caller
}

// DialClient connects to an S-GW server.
func DialClient(addr string) (*Client, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{caller: transport.NewCaller(conn)}, nil
}

func (c *Client) call(req s11.Message) (s11.Message, error) {
	resp, err := c.caller.Call(transport.StreamCommon, s11.Marshal(req))
	if err != nil {
		return nil, err
	}
	// Unmarshal copies every field out of the wire buffer, so the pooled
	// response can go straight back.
	msg, err := s11.Unmarshal(resp)
	transport.PutPayload(resp)
	return msg, err
}

// CreateSession establishes a default bearer.
func (c *Client) CreateSession(imsi uint64, mmeTEID uint32, apn string, ebi uint8) (*s11.CreateSessionResponse, error) {
	resp, err := c.call(&s11.CreateSessionRequest{IMSI: imsi, MMETEID: mmeTEID, APN: apn, BearerID: ebi})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(*s11.CreateSessionResponse)
	if !ok {
		return nil, fmt.Errorf("sgw: unexpected response %s", resp.Type())
	}
	return r, nil
}

// ModifyBearer points the downlink at an eNodeB endpoint.
func (c *Client) ModifyBearer(sgwTEID, enbTEID uint32, enbAddr string, ebi uint8) (*s11.ModifyBearerResponse, error) {
	resp, err := c.call(&s11.ModifyBearerRequest{SGWTEID: sgwTEID, ENBTEID: enbTEID, ENBAddr: enbAddr, BearerID: ebi})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(*s11.ModifyBearerResponse)
	if !ok {
		return nil, fmt.Errorf("sgw: unexpected response %s", resp.Type())
	}
	return r, nil
}

// ReleaseAccessBearers tears down the radio-side path (Active→Idle).
func (c *Client) ReleaseAccessBearers(sgwTEID uint32) (*s11.ReleaseAccessBearersResponse, error) {
	resp, err := c.call(&s11.ReleaseAccessBearersRequest{SGWTEID: sgwTEID})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(*s11.ReleaseAccessBearersResponse)
	if !ok {
		return nil, fmt.Errorf("sgw: unexpected response %s", resp.Type())
	}
	return r, nil
}

// DeleteSession removes the session (detach).
func (c *Client) DeleteSession(sgwTEID uint32, ebi uint8) (*s11.DeleteSessionResponse, error) {
	resp, err := c.call(&s11.DeleteSessionRequest{SGWTEID: sgwTEID, BearerID: ebi})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(*s11.DeleteSessionResponse)
	if !ok {
		return nil, fmt.Errorf("sgw: unexpected response %s", resp.Type())
	}
	return r, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.caller.Close() }
