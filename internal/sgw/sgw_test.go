package sgw

import (
	"sync"
	"testing"

	"scale/internal/s11"
)

func createSession(t *testing.T, g *GW, imsi uint64) *s11.CreateSessionResponse {
	t.Helper()
	resp := g.Handle(&s11.CreateSessionRequest{IMSI: imsi, MMETEID: 0x01000001, APN: "internet", BearerID: 5})
	csr, ok := resp.(*s11.CreateSessionResponse)
	if !ok || csr.Cause != s11.CauseAccepted {
		t.Fatalf("create = %+v", resp)
	}
	return csr
}

func TestCreateSession(t *testing.T) {
	g := New()
	csr := createSession(t, g, 42)
	if csr.SGWTEID == 0 || csr.PDNAddr == 0 {
		t.Fatalf("csr = %+v", csr)
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
	sess, ok := g.Session(csr.SGWTEID)
	if !ok || sess.IMSI != 42 || !sess.Idle() {
		t.Fatalf("session = %+v", sess)
	}
	// Distinct sessions get distinct TEIDs and PDN addresses.
	csr2 := createSession(t, g, 43)
	if csr2.SGWTEID == csr.SGWTEID || csr2.PDNAddr == csr.PDNAddr {
		t.Fatal("TEID/PDN reuse")
	}
}

func TestBearerLifecycle(t *testing.T) {
	g := New()
	csr := createSession(t, g, 42)

	// Activate: point downlink at the eNB.
	mbr := g.Handle(&s11.ModifyBearerRequest{SGWTEID: csr.SGWTEID, ENBTEID: 99, ENBAddr: "enb:1", BearerID: 5})
	if mbr.(*s11.ModifyBearerResponse).Cause != s11.CauseAccepted {
		t.Fatalf("modify = %+v", mbr)
	}
	sess, _ := g.Session(csr.SGWTEID)
	if sess.Idle() || sess.ENBTEID != 99 {
		t.Fatalf("after modify: %+v", sess)
	}

	// Idle: release access bearers.
	rab := g.Handle(&s11.ReleaseAccessBearersRequest{SGWTEID: csr.SGWTEID})
	if rab.(*s11.ReleaseAccessBearersResponse).Cause != s11.CauseAccepted {
		t.Fatalf("release = %+v", rab)
	}
	sess, _ = g.Session(csr.SGWTEID)
	if !sess.Idle() {
		t.Fatal("not idle after release")
	}

	// Detach: delete session.
	del := g.Handle(&s11.DeleteSessionRequest{SGWTEID: csr.SGWTEID, BearerID: 5})
	if del.(*s11.DeleteSessionResponse).Cause != s11.CauseAccepted {
		t.Fatalf("delete = %+v", del)
	}
	if g.Len() != 0 {
		t.Fatal("session survived delete")
	}
}

func TestUnknownTEIDPaths(t *testing.T) {
	g := New()
	if r := g.Handle(&s11.ModifyBearerRequest{SGWTEID: 7}); r.(*s11.ModifyBearerResponse).Cause != s11.CauseContextNotFound {
		t.Fatal("modify unknown accepted")
	}
	if r := g.Handle(&s11.ReleaseAccessBearersRequest{SGWTEID: 7}); r.(*s11.ReleaseAccessBearersResponse).Cause != s11.CauseContextNotFound {
		t.Fatal("release unknown accepted")
	}
	if r := g.Handle(&s11.DeleteSessionRequest{SGWTEID: 7}); r.(*s11.DeleteSessionResponse).Cause != s11.CauseContextNotFound {
		t.Fatal("delete unknown accepted")
	}
}

func TestDownlinkDataNotification(t *testing.T) {
	g := New()
	csr := createSession(t, g, 42)

	// Idle session: notification fires.
	ddn, ok := g.DownlinkDataArrived(csr.SGWTEID)
	if !ok || ddn.SGWTEID != csr.SGWTEID || ddn.MMETEID != 0x01000001 {
		t.Fatalf("ddn = %+v,%v", ddn, ok)
	}
	// Active session: no notification (data flows directly).
	g.Handle(&s11.ModifyBearerRequest{SGWTEID: csr.SGWTEID, ENBTEID: 9, ENBAddr: "x", BearerID: 5})
	if _, ok := g.DownlinkDataArrived(csr.SGWTEID); ok {
		t.Fatal("notification for active session")
	}
	// Unknown TEID.
	if _, ok := g.DownlinkDataArrived(12345); ok {
		t.Fatal("notification for unknown session")
	}
}

func TestConcurrentSessions(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 100; j++ {
				resp := g.Handle(&s11.CreateSessionRequest{IMSI: base*1000 + j, BearerID: 5})
				csr := resp.(*s11.CreateSessionResponse)
				g.Handle(&s11.ModifyBearerRequest{SGWTEID: csr.SGWTEID, ENBTEID: 1, BearerID: 5})
			}
		}(uint64(i))
	}
	wg.Wait()
	if g.Len() != 800 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	g := New()
	srv, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	csr, err := c.CreateSession(42, 0x01000001, "internet", 5)
	if err != nil {
		t.Fatal(err)
	}
	if csr.Cause != s11.CauseAccepted {
		t.Fatalf("create = %+v", csr)
	}
	if _, err := c.ModifyBearer(csr.SGWTEID, 77, "enb:1", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseAccessBearers(csr.SGWTEID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteSession(csr.SGWTEID, 5); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatal("session survived end-to-end delete")
	}
}
