// Package sim is the discrete-event simulator used to reproduce the
// paper's evaluation at scale: a virtual-time event loop, an MMP VM
// model with FIFO CPU queueing and utilization accounting, and the
// request plumbing shared by the SCALE cluster model (package core) and
// the baseline models (package baseline).
//
// The paper's own large-scale results come from "a custom event-driven
// simulator ... split into a load generator ... and a cluster emulator
// that emulates the processing at the MMP VMs" (Section 5.1); this
// package is that simulator.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded virtual-time event loop. It is not safe
// for concurrent use: all callbacks run on the caller's goroutine.
type Engine struct {
	now time.Duration
	pq  eventHeap
	seq uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// runs at the current time (immediately on the next dispatch).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Step dispatches the next event; it reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run dispatches until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time ≤ t, then advances the clock to
// t. Events scheduled beyond t stay queued.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }
