package sim

import (
	"testing"
	"time"

	"scale/internal/trace"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*time.Second, func() { order = append(order, 3) })
	e.At(1*time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.After(time.Second, func() {
		fired = append(fired, e.Now())
		e.After(2*time.Second, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	e.At(2*time.Second, func() {
		e.At(time.Second, func() { // in the past
			if e.Now() != 2*time.Second {
				t.Fatalf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1*time.Second, func() { ran++ })
	e.At(5*time.Second, func() { ran++ })
	e.RunUntil(3 * time.Second)
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if ran != 2 || e.Now() != 5*time.Second {
		t.Fatalf("after run: ran=%d now=%v", ran, e.Now())
	}
}

func TestVMQueueing(t *testing.T) {
	e := NewEngine()
	vm := NewVM(e, "vm1", ServiceTimes{trace.Attach: 10 * time.Millisecond}, time.Second)

	var delays []time.Duration
	e.At(0, func() {
		// Three back-to-back requests: delays 10, 20, 30 ms.
		for i := 0; i < 3; i++ {
			arr := e.Now()
			vm.Process(trace.Attach, 0, func(done time.Duration) {
				delays = append(delays, done-arr)
			})
		}
	})
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(delays) != 3 {
		t.Fatalf("delays = %v", delays)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v want %v", i, delays[i], want[i])
		}
	}
	if vm.Processed() != 3 {
		t.Fatalf("processed = %d", vm.Processed())
	}
}

func TestVMIdleThenBusy(t *testing.T) {
	e := NewEngine()
	vm := NewVM(e, "vm1", ServiceTimes{trace.TAUpdate: 5 * time.Millisecond}, time.Second)
	var last time.Duration
	e.At(0, func() { vm.Process(trace.TAUpdate, 0, func(d time.Duration) { last = d }) })
	// Second request after the first completes: no queueing.
	e.At(100*time.Millisecond, func() {
		arr := e.Now()
		vm.Process(trace.TAUpdate, 0, func(d time.Duration) {
			if d-arr != 5*time.Millisecond {
				t.Fatalf("unqueued delay = %v", d-arr)
			}
		})
	})
	e.Run()
	if last != 5*time.Millisecond {
		t.Fatalf("first completion = %v", last)
	}
}

func TestVMQueueDelay(t *testing.T) {
	e := NewEngine()
	vm := NewVM(e, "vm1", ServiceTimes{trace.Attach: 8 * time.Millisecond}, time.Second)
	e.At(0, func() {
		vm.Process(trace.Attach, 0, func(time.Duration) {})
		if got := vm.QueueDelay(); got != 8*time.Millisecond {
			t.Fatalf("queue delay = %v", got)
		}
	})
	e.Run() // completion event advances the clock to 8ms
	if got := vm.QueueDelay(); got != 0 {
		t.Fatalf("post-run queue delay = %v", got)
	}
}

func TestVMUtilization(t *testing.T) {
	e := NewEngine()
	vm := NewVM(e, "vm1", ServiceTimes{trace.TAUpdate: time.Millisecond}, time.Second)
	// 500 × 1ms of work in a 1 s window → 50% utilization.
	e.At(0, func() {
		for i := 0; i < 500; i++ {
			vm.Process(trace.TAUpdate, 0, nil)
		}
	})
	e.At(2*time.Second, func() {})
	e.Run()
	mean := vm.MeanUtilization()
	if mean < 0.2 || mean > 0.6 {
		t.Fatalf("mean utilization = %v", mean)
	}
	if peak := vm.PeakUtilization(); peak < 0.4 {
		t.Fatalf("peak utilization = %v", peak)
	}
	if tr := vm.CPUTrace(); len(tr) < 2 {
		t.Fatalf("trace windows = %d", len(tr))
	}
}

func TestVMExtraWorkAndDefaults(t *testing.T) {
	e := NewEngine()
	vm := NewVM(e, "vm1", nil, 0) // defaults
	if vm.ServiceTime(trace.Attach) != DefaultServiceTimes[trace.Attach] {
		t.Fatal("default service times not applied")
	}
	if vm.ServiceTime(trace.Procedure(99)) != time.Millisecond {
		t.Fatal("unknown procedure default")
	}
	e.At(0, func() {
		soj := vm.Process(trace.Attach, 10*time.Millisecond, nil)
		if soj != DefaultServiceTimes[trace.Attach]+10*time.Millisecond {
			t.Fatalf("sojourn with extra = %v", soj)
		}
	})
	e.Run()
}

func TestServiceTimesCloneScale(t *testing.T) {
	s := DefaultServiceTimes.Clone()
	s[trace.Attach] = time.Second
	if DefaultServiceTimes[trace.Attach] == time.Second {
		t.Fatal("Clone aliases the original")
	}
	half := DefaultServiceTimes.Scale(0.5)
	if half[trace.Attach] != DefaultServiceTimes[trace.Attach]/2 {
		t.Fatalf("Scale: %v", half[trace.Attach])
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record(trace.Attach, 10*time.Millisecond)
	r.Record(trace.Attach, 20*time.Millisecond)
	r.Record(trace.Handover, 5*time.Millisecond)
	if r.Count() != 3 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.P99() < 15*time.Millisecond {
		t.Fatalf("p99 = %v", r.P99())
	}
	if r.P99For(trace.Handover) > 6*time.Millisecond && r.P99For(trace.Handover) < 4*time.Millisecond {
		t.Fatalf("handover p99 = %v", r.P99For(trace.Handover))
	}
	if r.P99For(trace.Paging) != 0 {
		t.Fatal("unseen proc p99 != 0")
	}
	if len(r.CDF(10)) == 0 {
		t.Fatal("empty CDF")
	}
	if r.Mean() <= 0 {
		t.Fatal("mean <= 0")
	}
}

// trivialCluster routes everything to one VM.
type trivialCluster struct {
	vm  *VM
	rec *Recorder
}

func (c *trivialCluster) Arrive(req *Request) {
	arr := req.Arrived
	proc := req.Proc
	c.vm.Process(proc, 0, func(done time.Duration) {
		c.rec.Record(proc, done-arr)
	})
}

func TestFeedEndToEnd(t *testing.T) {
	e := NewEngine()
	pop := trace.NewPopulation(100, 1, trace.Uniform{Lo: 0.2, Hi: 0.8})
	arrivals := trace.Generator{Pop: pop, Seed: 2}.Poisson(100, 10*time.Second)
	c := &trivialCluster{vm: NewVM(e, "vm1", nil, time.Second), rec: NewRecorder()}
	Feed(e, pop, arrivals, c)
	e.Run()
	if c.rec.Count() != uint64(len(arrivals)) {
		t.Fatalf("completed %d of %d", c.rec.Count(), len(arrivals))
	}
	if c.rec.P99() <= 0 {
		t.Fatal("p99 not positive")
	}
}

func TestNetworkParams(t *testing.T) {
	if DefaultNetwork.RequestRTT() != 2*(DefaultNetwork.ENBToMME+DefaultNetwork.MLBToMMP) {
		t.Fatal("RTT formula")
	}
}

func TestDeviceKeyStable(t *testing.T) {
	pop := trace.NewPopulation(3, 1, trace.Uniform{Lo: 0.5, Hi: 0.5})
	if deviceKey(pop, 0) != deviceKey(pop, 0) {
		t.Fatal("unstable key")
	}
	if deviceKey(pop, 0) == deviceKey(pop, 1) {
		t.Fatal("key collision")
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		v uint64
		s string
	}{{0, "0"}, {7, "7"}, {1234567890, "1234567890"}} {
		if got := itoa(tc.v); got != tc.s {
			t.Fatalf("itoa(%d) = %q", tc.v, got)
		}
	}
}
