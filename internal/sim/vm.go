package sim

import (
	"time"

	"scale/internal/metrics"
	"scale/internal/trace"
)

// ServiceTimes maps each control procedure to its CPU cost on an MMP VM.
type ServiceTimes map[trace.Procedure]time.Duration

// DefaultServiceTimes calibrates a single MMP VM to saturate in the same
// region as the paper's testbed MME (Figure 2(a): delays blow up past a
// few hundred requests/second, attach being the costliest procedure).
var DefaultServiceTimes = ServiceTimes{
	trace.Attach:         2500 * time.Microsecond,
	trace.ServiceRequest: 1200 * time.Microsecond,
	trace.TAUpdate:       800 * time.Microsecond,
	trace.Handover:       1600 * time.Microsecond,
	trace.Paging:         600 * time.Microsecond,
	trace.Detach:         1000 * time.Microsecond,
}

// Clone copies the service-time table.
func (s ServiceTimes) Clone() ServiceTimes {
	out := make(ServiceTimes, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Scale returns a copy with every service time multiplied by f —
// used to model faster or slower VM flavors.
func (s ServiceTimes) Scale(f float64) ServiceTimes {
	out := make(ServiceTimes, len(s))
	for k, v := range s {
		out[k] = time.Duration(float64(v) * f)
	}
	return out
}

// VM models one MMP VM: a single CPU serving a FIFO queue of procedure
// work. Processing delay emerges from queueing: work enqueued while the
// CPU is busy waits, exactly reproducing the knee-shaped delay curves of
// Figure 2(a).
type VM struct {
	ID  string
	eng *Engine
	svc ServiceTimes
	cpu *metrics.CPUTracker

	busyUntil time.Duration
	processed uint64
	// StateCount tracks stored device states for memory accounting.
	StateCount int
}

// NewVM creates a VM with the given service-time table; nil means
// DefaultServiceTimes. cpuWindow is the utilization sampling window
// (0 → 1s).
func NewVM(eng *Engine, id string, svc ServiceTimes, cpuWindow time.Duration) *VM {
	if svc == nil {
		svc = DefaultServiceTimes
	}
	if cpuWindow <= 0 {
		cpuWindow = time.Second
	}
	return &VM{ID: id, eng: eng, svc: svc, cpu: metrics.NewCPUTracker(cpuWindow)}
}

// ServiceTime returns the configured CPU cost of proc.
func (vm *VM) ServiceTime(proc trace.Procedure) time.Duration {
	if d, ok := vm.svc[proc]; ok {
		return d
	}
	return time.Millisecond
}

// Process enqueues work of the given procedure plus extra CPU time and
// invokes done (if non-nil) at completion with the completion timestamp.
// The returned duration is the total sojourn (queue + service).
func (vm *VM) Process(proc trace.Procedure, extra time.Duration, done func(completion time.Duration)) time.Duration {
	svc := vm.ServiceTime(proc) + extra
	return vm.ProcessWork(svc, done)
}

// ProcessWork enqueues raw CPU work (replication updates, state
// transfers) without a procedure classification.
func (vm *VM) ProcessWork(svc time.Duration, done func(completion time.Duration)) time.Duration {
	now := vm.eng.Now()
	start := vm.busyUntil
	if start < now {
		start = now
	}
	completion := start + svc
	vm.busyUntil = completion
	vm.cpu.AddBusy(completion, svc)
	vm.processed++
	if done != nil {
		vm.eng.At(completion, func() { done(completion) })
	}
	return completion - now
}

// QueueDelay is the time new work would wait before service starts.
func (vm *VM) QueueDelay() time.Duration {
	d := vm.busyUntil - vm.eng.Now()
	if d < 0 {
		return 0
	}
	return d
}

// Utilization is the smoothed CPU utilization the VM reports to the MLB.
func (vm *VM) Utilization() float64 {
	vm.cpu.Advance(vm.eng.Now())
	return vm.cpu.Utilization()
}

// CPUTrace returns the closed utilization windows so far.
func (vm *VM) CPUTrace() []metrics.CPUSample {
	vm.cpu.Advance(vm.eng.Now())
	return vm.cpu.Trace()
}

// MeanUtilization averages closed CPU windows.
func (vm *VM) MeanUtilization() float64 {
	vm.cpu.Advance(vm.eng.Now())
	return vm.cpu.MeanUtilization()
}

// PeakUtilization reports the maximum closed CPU window.
func (vm *VM) PeakUtilization() float64 {
	vm.cpu.Advance(vm.eng.Now())
	return vm.cpu.PeakUtilization()
}

// Processed reports the number of work items executed.
func (vm *VM) Processed() uint64 { return vm.processed }

// NetworkParams collects the fixed propagation delays of the simulated
// topology.
type NetworkParams struct {
	// ENBToMME is the one-way eNodeB→MLB/MME delay within a DC.
	ENBToMME time.Duration
	// MLBToMMP is the one-way MLB→MMP delay (same rack; tiny).
	MLBToMMP time.Duration
}

// DefaultNetwork is a metro deployment: ~2 ms one-way RAN backhaul,
// negligible intra-DC hop.
var DefaultNetwork = NetworkParams{
	ENBToMME: 2 * time.Millisecond,
	MLBToMMP: 100 * time.Microsecond,
}

// RequestRTT is the fixed network component of one control transaction:
// eNB→MLB→MMP and back.
func (n NetworkParams) RequestRTT() time.Duration {
	return 2 * (n.ENBToMME + n.MLBToMMP)
}

// Request is one control-plane transaction flowing through a cluster
// model.
type Request struct {
	// Device is the population index; Key its routing identity (GUTI).
	Device int
	Key    string
	Weight float64
	Proc   trace.Procedure
	// Arrived is the arrival virtual time.
	Arrived time.Duration
}

// Cluster consumes requests; implementations embody the routing policy
// under evaluation (SCALE, 3GPP static pool, SIMPLE, geo variants).
type Cluster interface {
	// Arrive presents a request at its arrival time; the cluster must
	// record the eventual completion via its recorder.
	Arrive(req *Request)
}

// Recorder accumulates per-procedure delay distributions for one
// experiment run.
type Recorder struct {
	All    *metrics.Histogram
	ByProc map[trace.Procedure]*metrics.Histogram
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		All:    metrics.NewHistogram(5),
		ByProc: make(map[trace.Procedure]*metrics.Histogram),
	}
}

// Record logs one completed request's total delay.
func (r *Recorder) Record(proc trace.Procedure, delay time.Duration) {
	r.All.Record(int64(delay))
	h, ok := r.ByProc[proc]
	if !ok {
		h = metrics.NewHistogram(5)
		r.ByProc[proc] = h
	}
	h.Record(int64(delay))
}

// P99 returns the 99th-percentile delay across all procedures.
func (r *Recorder) P99() time.Duration { return time.Duration(r.All.P99()) }

// P99For returns the per-procedure 99th percentile (0 if unseen).
func (r *Recorder) P99For(proc trace.Procedure) time.Duration {
	if h, ok := r.ByProc[proc]; ok {
		return time.Duration(h.P99())
	}
	return 0
}

// Mean returns the mean delay across all procedures.
func (r *Recorder) Mean() time.Duration { return time.Duration(r.All.Mean()) }

// Count returns the number of completed requests.
func (r *Recorder) Count() uint64 { return r.All.Count() }

// CDF returns the aggregate delay CDF.
func (r *Recorder) CDF(maxPoints int) []metrics.CDFPoint { return r.All.CDF(maxPoints) }

// Feed schedules a workload's arrivals into a cluster on the engine.
// Population weights annotate each request for access-aware policies.
func Feed(eng *Engine, pop *trace.Population, arrivals []trace.Arrival, c Cluster) {
	for _, a := range arrivals {
		a := a
		eng.At(a.At, func() {
			req := &Request{
				Device:  a.Device,
				Key:     deviceKey(pop, a.Device),
				Weight:  pop.Devices[a.Device].Weight,
				Proc:    a.Proc,
				Arrived: eng.Now(),
			}
			c.Arrive(req)
		})
	}
}

// deviceKey derives the stable routing key for a population index.
func deviceKey(pop *trace.Population, idx int) string {
	return "imsi-" + itoa(pop.Devices[idx].IMSI)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
