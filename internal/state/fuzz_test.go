package state

import (
	"reflect"
	"testing"

	"scale/internal/guti"
)

// FuzzUnmarshal hardens the UE-context decoder (replication payloads
// cross VM and DC boundaries): no panics, and accepted blobs round-trip
// to identical contexts.
func FuzzUnmarshal(f *testing.F) {
	c := &UEContext{
		IMSI: 1, GUTI: guti.GUTI{MTMSI: 2}, Mode: Idle,
		TAIList: []uint16{1}, APN: "internet",
		ReplicaMMPs: []string{"mmp-2"}, RemoteDC: "dc2", Version: 3,
	}
	f.Add(c.Marshal())
	f.Add((&UEContext{}).Marshal())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ctx, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(ctx.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(ctx, again) {
			t.Fatalf("round trip unstable:\n%+v\n%+v", ctx, again)
		}
	})
}
