package state

import (
	"testing"

	"scale/internal/guti"
)

// A replica push must never silently demote a master entry: the
// regression this guards against is a late snapshot from a dead MMP
// arriving after this VM promoted the device during failover.
func TestApplyReplicaNeverDemotesMaster(t *testing.T) {
	s := NewStore()
	c := sampleContext()
	c.Version = 10
	s.PutMaster(c)

	// Stale push against a master entry: refused, nothing changes.
	stale := c.Clone()
	stale.Version = 4
	if err := s.ApplyReplica(stale); err != ErrStale {
		t.Fatalf("stale push err = %v, want ErrStale", err)
	}
	if s.IsReplica(c.GUTI) {
		t.Fatal("stale replica push demoted a master entry")
	}

	// Newer push against a master entry: content merges, mastership
	// stays — the peer legitimately served newer traffic for the device,
	// but mastership only changes via Promote/PutMaster/Delete.
	newer := c.Clone()
	newer.Version = 20
	newer.Mode = Idle
	if err := s.ApplyReplica(newer); err != nil {
		t.Fatalf("newer push err = %v", err)
	}
	if s.IsReplica(c.GUTI) {
		t.Fatal("newer replica push demoted a master entry")
	}
	got, _ := s.Get(c.GUTI)
	if got.Version != 20 || got.Mode != Idle {
		t.Fatalf("merge did not refresh content: %+v", got)
	}
	if s.MasterCount() != 1 {
		t.Fatalf("masters = %d, want 1", s.MasterCount())
	}
}

func TestPromote(t *testing.T) {
	s := NewStore()
	c := sampleContext()
	if _, ok := s.Promote(c.GUTI); ok {
		t.Fatal("promoting an absent entry reported success")
	}
	if err := s.ApplyReplica(c); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Promote(c.GUTI)
	if !ok || got == nil {
		t.Fatal("promote failed")
	}
	if s.IsReplica(c.GUTI) {
		t.Fatal("entry still a replica after promote")
	}
	if s.MasterCount() != 1 {
		t.Fatalf("masters = %d", s.MasterCount())
	}
	// Promoting a master entry is a no-op reported as success.
	if _, ok := s.Promote(c.GUTI); !ok {
		t.Fatal("re-promote reported failure")
	}
}

func TestPromoteMatching(t *testing.T) {
	s := NewStore()
	mk := func(mtmsi uint32, master string) *UEContext {
		c := sampleContext()
		c.GUTI = guti.GUTI{PLMN: guti.PLMN{MCC: 310, MNC: 26}, MMEGI: 1, MMEC: 2, MTMSI: mtmsi}
		c.MasterMMP = master
		return c
	}
	// Two replicas mastered by the dead VM, one replica mastered by a
	// live VM, one local master entry.
	dead1, dead2 := mk(1, "mmp-dead"), mk(2, "mmp-dead")
	live := mk(3, "mmp-live")
	own := mk(4, "mmp-self")
	for _, c := range []*UEContext{dead1, dead2, live} {
		if err := s.ApplyReplica(c); err != nil {
			t.Fatal(err)
		}
	}
	s.PutMaster(own)

	promoted := s.PromoteMatching(func(c *UEContext) bool { return c.MasterMMP == "mmp-dead" })
	if len(promoted) != 2 {
		t.Fatalf("promoted %d entries, want 2", len(promoted))
	}
	for _, c := range []*UEContext{dead1, dead2} {
		if s.IsReplica(c.GUTI) {
			t.Fatalf("entry %d still a replica", c.GUTI.MTMSI)
		}
	}
	if !s.IsReplica(live.GUTI) {
		t.Fatal("replica mastered by a live VM was promoted")
	}
	if s.MasterCount() != 3 {
		t.Fatalf("masters = %d, want 3", s.MasterCount())
	}
}
