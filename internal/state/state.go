// Package state defines the per-device MME state (the UE context) and
// the replicated store MMP VMs keep it in.
//
// The paper (Section 2) enumerates what an MME stores per device:
// timers, cryptography keys, S-GW/P-GW data-path parameters, eNodeB
// configuration and location. SCALE extends this record with the
// device-to-MME mapping, the profiled access frequency (Section 4.5) and
// replica placement metadata. Contexts are versioned; replicas accept
// only monotonically newer versions, which is what makes SCALE's
// asynchronous update-on-idle replication safe (Section 4.6: replicas are
// refreshed when the device returns to Idle mode).
package state

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"scale/internal/guti"
	"scale/internal/nas"
	"scale/internal/wire"
)

// Mode is the EMM/ECM mode of a device.
type Mode uint8

// Device modes.
const (
	// Deregistered: no context established.
	Deregistered Mode = iota
	// Idle: registered, no radio connection; reachable via paging.
	Idle
	// Active: registered with live radio connection and S1 context.
	Active
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Deregistered:
		return "deregistered"
	case Idle:
		return "idle"
	case Active:
		return "active"
	default:
		return fmt.Sprintf("state.Mode(%d)", uint8(m))
	}
}

// UEContext is everything an MMP stores for one device.
type UEContext struct {
	// Identity.
	IMSI uint64
	GUTI guti.GUTI

	// Connectivity state.
	Mode    Mode
	TAI     uint16
	TAIList []uint16
	// taiArr inlines short TAI lists (the common case is exactly one
	// entry) so the hot attach/TAU path stores the list without a heap
	// allocation: TAIList points into this array when it fits. Clone
	// and Unmarshal preserve the inlining.
	taiArr [4]uint16

	// NAS security context (keys + counters).
	Security nas.SecurityContext

	// Default bearer / data path.
	BearerID uint8
	MMETEID  uint32
	SGWTEID  uint32
	ENBTEID  uint32
	PDNAddr  uint32
	APN      string

	// S1 association while Active.
	ENBID   uint32
	ENBUEID uint32
	MMEUEID uint32

	// Timers (seconds).
	T3412Sec uint32

	// SCALE metadata.
	//
	// AccessFreq is the moving-average access frequency w_i the
	// access-aware replication keys off.
	AccessFreq float64
	// MasterMMP is the device-to-MME mapping SCALE adds to the stored
	// state (Section 4.1).
	MasterMMP string
	// ReplicaMMPs lists local MMPs holding copies.
	ReplicaMMPs []string
	// RemoteDC names the DC holding an external replica, if any
	// (Section 4.5.2: "the master MMP attaches the location of the
	// external state of a device to its current state").
	RemoteDC string

	// Version increases on every mutation; replicas only accept newer
	// versions.
	Version uint64
}

// SetSingleTAI sets the tracking-area list to exactly one entry stored
// in the context's inline array — the steady-state shape — without
// allocating.
//
//scale:hotpath
func (c *UEContext) SetSingleTAI(tai uint16) {
	c.taiArr[0] = tai
	c.TAIList = c.taiArr[:1]
}

// Touch folds one observed access into the moving-average frequency and
// bumps the version. alpha follows the paper's per-epoch moving average.
func (c *UEContext) Touch(alpha float64) {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	c.AccessFreq = alpha*1 + (1-alpha)*c.AccessFreq
	c.Version++
}

// Decay ages the access frequency for an epoch with no access.
func (c *UEContext) Decay(alpha float64) {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	c.AccessFreq = (1 - alpha) * c.AccessFreq
	c.Version++
}

// Marshal encodes the context for replication or geo-transfer.
func (c *UEContext) Marshal() []byte {
	w := wire.NewWriter(256)
	c.MarshalTo(w)
	return w.Bytes()
}

// MarshalTo appends the context's encoding to w. The replication hot
// path pairs it with the wire writer pool so each push reuses one
// encode buffer instead of allocating per snapshot.
func (c *UEContext) MarshalTo(w *wire.Writer) {
	w.U64(c.IMSI)
	w.Raw(c.GUTI.Encode(nil))
	w.U8(uint8(c.Mode))
	w.U16(c.TAI)
	w.U16(uint16(len(c.TAIList)))
	for _, t := range c.TAIList {
		w.U16(t)
	}
	w.Raw(c.Security.KASME[:])
	w.Raw(c.Security.KNASint[:])
	w.U8(c.Security.Alg)
	w.U32(c.Security.ULCount)
	w.U32(c.Security.DLCount)
	w.U8(c.Security.KSI)
	w.U8(c.BearerID)
	w.U32(c.MMETEID)
	w.U32(c.SGWTEID)
	w.U32(c.ENBTEID)
	w.U32(c.PDNAddr)
	w.String16(c.APN)
	w.U32(c.ENBID)
	w.U32(c.ENBUEID)
	w.U32(c.MMEUEID)
	w.U32(c.T3412Sec)
	w.F64(c.AccessFreq)
	w.String16(c.MasterMMP)
	w.U16(uint16(len(c.ReplicaMMPs)))
	for _, rID := range c.ReplicaMMPs {
		w.String16(rID)
	}
	w.String16(c.RemoteDC)
	w.U64(c.Version)
}

// ErrCorrupt indicates an undecodable context blob.
var ErrCorrupt = errors.New("state: corrupt context")

// Unmarshal decodes a context encoded by Marshal.
func Unmarshal(b []byte) (*UEContext, error) {
	r := wire.NewReader(b)
	c := &UEContext{}
	c.IMSI = r.U64()
	g, err := guti.Decode(r.Raw(guti.EncodedLen))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	c.GUTI = g
	c.Mode = Mode(r.U8())
	c.TAI = r.U16()
	nTAI := int(r.U16())
	if nTAI > 0 {
		if nTAI > r.Remaining()/2 {
			return nil, fmt.Errorf("%w: TAI list %d", ErrCorrupt, nTAI)
		}
		if nTAI <= len(c.taiArr) {
			c.TAIList = c.taiArr[:nTAI]
		} else {
			c.TAIList = make([]uint16, nTAI)
		}
		for i := range c.TAIList {
			c.TAIList[i] = r.U16()
		}
	}
	copy(c.Security.KASME[:], r.Raw(nas.KeySize))
	copy(c.Security.KNASint[:], r.Raw(nas.KeySize))
	c.Security.Alg = r.U8()
	c.Security.ULCount = r.U32()
	c.Security.DLCount = r.U32()
	c.Security.KSI = r.U8()
	c.BearerID = r.U8()
	c.MMETEID = r.U32()
	c.SGWTEID = r.U32()
	c.ENBTEID = r.U32()
	c.PDNAddr = r.U32()
	c.APN = r.String16()
	c.ENBID = r.U32()
	c.ENBUEID = r.U32()
	c.MMEUEID = r.U32()
	c.T3412Sec = r.U32()
	c.AccessFreq = r.F64()
	c.MasterMMP = r.String16()
	nRep := int(r.U16())
	if nRep > 0 {
		if nRep > r.Remaining()/2 {
			return nil, fmt.Errorf("%w: replica list %d", ErrCorrupt, nRep)
		}
		c.ReplicaMMPs = make([]string, nRep)
		for i := range c.ReplicaMMPs {
			c.ReplicaMMPs[i] = r.String16()
		}
	}
	c.RemoteDC = r.String16()
	c.Version = r.U64()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return c, nil
}

// Clone deep-copies the context.
func (c *UEContext) Clone() *UEContext {
	cp := *c
	if c.TAIList != nil {
		if len(c.TAIList) <= len(cp.taiArr) {
			// Short lists re-inline into the clone's own array (the
			// struct copy above already carried the elements when the
			// source was inlined; a copy covers out-of-line sources too).
			copy(cp.taiArr[:], c.TAIList)
			cp.TAIList = cp.taiArr[:len(c.TAIList)]
		} else {
			cp.TAIList = append([]uint16(nil), c.TAIList...)
		}
	}
	if c.ReplicaMMPs != nil {
		cp.ReplicaMMPs = append([]string(nil), c.ReplicaMMPs...)
	}
	return &cp
}

// Size approximates the stored footprint in bytes (used for the memory
// side of VM provisioning).
func (c *UEContext) Size() int { return len(c.Marshal()) }

// Store is a concurrency-safe UE context store keyed by GUTI, as held by
// one MMP VM. It distinguishes master entries (this VM owns the device)
// from replica entries (held for load-balancing), since provisioning
// accounts for both but procedures behave differently on each.
//
// The store is sharded by GUTI hash so replication fan-in, procedure
// processing and snapshotting on independent devices never contend on
// one lock; every operation on a single device touches exactly one
// shard. Cross-device operations (Len, Range, PromoteMatching) iterate
// the shards.
type Store struct {
	shards []storeShard
	mask   uint64
}

// storeShard is one lock domain of the store: a lock plus an
// open-addressed context table (see table.go). The trailing pad keeps
// hot shard headers off each other's cache lines.
type storeShard struct {
	mu  sync.RWMutex
	tab ueTable
	_   [8]byte
}

// maxShards bounds the shard count; beyond this, lock contention is no
// longer the limiter. It must stay 1<<shardHashBits: shard selection
// consumes the low hash bits, slot selection inside a shard's table
// uses the rest.
const maxShards = 1 << shardHashBits

// DefaultShards returns the shard count NewStore sizes for: the next
// power of two ≥ GOMAXPROCS, capped at maxShards — one lock domain per
// core the runtime will schedule on.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// NewStore returns an empty store with DefaultShards() shards.
func NewStore() *Store { return NewStoreN(0) }

// NewStoreN returns an empty store with n shards, rounded up to a power
// of two and capped at 256; n ≤ 0 means DefaultShards().
func NewStoreN(n int) *Store {
	if n <= 0 {
		n = DefaultShards()
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	// Shard tables allocate lazily on first insert.
	return &Store{shards: make([]storeShard, p), mask: uint64(p - 1)}
}

// NumShards reports the shard count (a power of two).
func (s *Store) NumShards() int { return len(s.shards) }

// ShardIndex returns the shard the given GUTI lives in — exposed so
// hosts (the MMP engine) can align their own per-device lock domains
// with the store's.
func (s *Store) ShardIndex(g guti.GUTI) int { return int(g.Hash() & s.mask) }

// PutMaster stores ctx as a master entry.
//
//scale:hotpath
func (s *Store) PutMaster(ctx *UEContext) {
	h := ctx.GUTI.Hash()
	k := packGUTI(ctx.GUTI)
	sh := &s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.tab.upsert(h, k)
	e.ctx = ctx
	e.replica = false
}

// ErrStale is returned when applying a replica update older than the
// stored version.
var ErrStale = errors.New("state: stale replica update")

// ApplyReplica stores ctx as a replica entry. Updates with a version not
// newer than the stored one return ErrStale and leave the store
// unchanged, making replication idempotent and reordering-safe.
//
// A newer push targeting an entry this store holds as *master* merges
// promote-aware: the content is refreshed (the peer legitimately served
// newer traffic for the device) but the entry stays master — replication
// must never silently demote mastership, e.g. when a late push from a
// dead MMP races with this VM's failover promotion. Mastership only
// changes via Promote/PutMaster/Delete.
func (s *Store) ApplyReplica(ctx *UEContext) error {
	h := ctx.GUTI.Hash()
	k := packGUTI(ctx.GUTI)
	sh := &s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.tab.get(h, k); e != nil {
		if e.ctx.Version >= ctx.Version {
			return ErrStale
		}
		// Keep the existing master/replica status: only the content is
		// refreshed for entries already held as master.
		e.ctx = ctx
		return nil
	}
	e := sh.tab.upsert(h, k)
	e.ctx = ctx
	e.replica = true
	return nil
}

// Promote flips the entry for g from replica to master, returning the
// stored context. It reports false (and promotes nothing) if the entry
// is absent; promoting a master entry is a no-op reported as true.
func (s *Store) Promote(g guti.GUTI) (*UEContext, bool) {
	h := g.Hash()
	sh := &s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.tab.get(h, packGUTI(g))
	if e == nil {
		return nil, false
	}
	e.replica = false
	return e.ctx, true
}

// Demote flips a master entry to replica, recording newMaster as the
// device's master — the inverse of Promote, used when mastership moves
// to another VM during a live ring rebalance. Replica entries and
// misses are left untouched. Reports whether a master entry was
// demoted.
func (s *Store) Demote(g guti.GUTI, newMaster string) bool {
	h := g.Hash()
	sh := &s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.tab.get(h, packGUTI(g))
	if e == nil || e.replica {
		return false
	}
	e.replica = true
	e.ctx.MasterMMP = newMaster
	return true
}

// PromoteMatching promotes every replica entry matching pred to master
// and returns the promoted contexts. Master entries are never visited.
// The failover path uses it to take ownership of the devices a dead MMP
// mastered.
func (s *Store) PromoteMatching(pred func(ctx *UEContext) bool) []*UEContext {
	var out []*UEContext
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.tab.foreach(func(e *ueEntry) bool {
			if e.replica && pred(e.ctx) {
				e.replica = false
				out = append(out, e.ctx)
			}
			return true
		})
		sh.mu.Unlock()
	}
	return out
}

// Get returns the context for g and whether it is present.
//
//scale:hotpath
func (s *Store) Get(g guti.GUTI) (*UEContext, bool) {
	h := g.Hash()
	sh := &s.shards[h&s.mask]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e := sh.tab.get(h, packGUTI(g)); e != nil {
		return e.ctx, true
	}
	return nil, false
}

// GetAt is Get with the shard index precomputed — kept so hosts that
// align their own per-device lock domains with the store's (the MMP
// engine) state the shard they expect. i must equal ShardIndex(g).
//
//scale:hotpath
func (s *Store) GetAt(i int, g guti.GUTI) (*UEContext, bool) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e := sh.tab.get(g.Hash(), packGUTI(g)); e != nil {
		return e.ctx, true
	}
	return nil, false
}

// IsReplica reports whether the entry for g is a replica copy.
func (s *Store) IsReplica(g guti.GUTI) bool {
	h := g.Hash()
	sh := &s.shards[h&s.mask]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.tab.get(h, packGUTI(g))
	return e != nil && e.replica
}

// Delete removes the entry for g.
//
//scale:hotpath
func (s *Store) Delete(g guti.GUTI) {
	h := g.Hash()
	sh := &s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.tab.del(h, packGUTI(g))
}

// Len reports total entries (masters + replicas).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.tab.n
		sh.mu.RUnlock()
	}
	return n
}

// MasterCount reports master entries only.
func (s *Store) MasterCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.tab.foreach(func(e *ueEntry) bool {
			if !e.replica {
				n++
			}
			return true
		})
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. The callback
// must not mutate the store. Entries are visited shard by shard; each
// shard's read lock is held only while that shard is walked, so Range
// never freezes the whole store.
func (s *Store) Range(fn func(ctx *UEContext, isReplica bool) bool) {
	for i := range s.shards {
		if !s.rangeShard(i, fn) {
			return
		}
	}
}

// RangeShard calls fn for every entry in shard i (as numbered by
// ShardIndex) until fn returns false, reporting whether the walk ran to
// completion. Hosts that align their own lock domains with the store's
// use it to sweep one shard at a time.
func (s *Store) RangeShard(i int, fn func(ctx *UEContext, isReplica bool) bool) bool {
	return s.rangeShard(i, fn)
}

func (s *Store) rangeShard(i int, fn func(ctx *UEContext, isReplica bool) bool) bool {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tab.foreach(func(e *ueEntry) bool {
		return fn(e.ctx, e.replica)
	})
}
