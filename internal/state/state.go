// Package state defines the per-device MME state (the UE context) and
// the replicated store MMP VMs keep it in.
//
// The paper (Section 2) enumerates what an MME stores per device:
// timers, cryptography keys, S-GW/P-GW data-path parameters, eNodeB
// configuration and location. SCALE extends this record with the
// device-to-MME mapping, the profiled access frequency (Section 4.5) and
// replica placement metadata. Contexts are versioned; replicas accept
// only monotonically newer versions, which is what makes SCALE's
// asynchronous update-on-idle replication safe (Section 4.6: replicas are
// refreshed when the device returns to Idle mode).
package state

import (
	"errors"
	"fmt"
	"sync"

	"scale/internal/guti"
	"scale/internal/nas"
	"scale/internal/wire"
)

// Mode is the EMM/ECM mode of a device.
type Mode uint8

// Device modes.
const (
	// Deregistered: no context established.
	Deregistered Mode = iota
	// Idle: registered, no radio connection; reachable via paging.
	Idle
	// Active: registered with live radio connection and S1 context.
	Active
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Deregistered:
		return "deregistered"
	case Idle:
		return "idle"
	case Active:
		return "active"
	default:
		return fmt.Sprintf("state.Mode(%d)", uint8(m))
	}
}

// UEContext is everything an MMP stores for one device.
type UEContext struct {
	// Identity.
	IMSI uint64
	GUTI guti.GUTI

	// Connectivity state.
	Mode    Mode
	TAI     uint16
	TAIList []uint16

	// NAS security context (keys + counters).
	Security nas.SecurityContext

	// Default bearer / data path.
	BearerID uint8
	MMETEID  uint32
	SGWTEID  uint32
	ENBTEID  uint32
	PDNAddr  uint32
	APN      string

	// S1 association while Active.
	ENBID   uint32
	ENBUEID uint32
	MMEUEID uint32

	// Timers (seconds).
	T3412Sec uint32

	// SCALE metadata.
	//
	// AccessFreq is the moving-average access frequency w_i the
	// access-aware replication keys off.
	AccessFreq float64
	// MasterMMP is the device-to-MME mapping SCALE adds to the stored
	// state (Section 4.1).
	MasterMMP string
	// ReplicaMMPs lists local MMPs holding copies.
	ReplicaMMPs []string
	// RemoteDC names the DC holding an external replica, if any
	// (Section 4.5.2: "the master MMP attaches the location of the
	// external state of a device to its current state").
	RemoteDC string

	// Version increases on every mutation; replicas only accept newer
	// versions.
	Version uint64
}

// Touch folds one observed access into the moving-average frequency and
// bumps the version. alpha follows the paper's per-epoch moving average.
func (c *UEContext) Touch(alpha float64) {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	c.AccessFreq = alpha*1 + (1-alpha)*c.AccessFreq
	c.Version++
}

// Decay ages the access frequency for an epoch with no access.
func (c *UEContext) Decay(alpha float64) {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	c.AccessFreq = (1 - alpha) * c.AccessFreq
	c.Version++
}

// Marshal encodes the context for replication or geo-transfer.
func (c *UEContext) Marshal() []byte {
	w := wire.NewWriter(256)
	w.U64(c.IMSI)
	w.Raw(c.GUTI.Encode(nil))
	w.U8(uint8(c.Mode))
	w.U16(c.TAI)
	w.U16(uint16(len(c.TAIList)))
	for _, t := range c.TAIList {
		w.U16(t)
	}
	w.Raw(c.Security.KASME[:])
	w.Raw(c.Security.KNASint[:])
	w.U8(c.Security.Alg)
	w.U32(c.Security.ULCount)
	w.U32(c.Security.DLCount)
	w.U8(c.Security.KSI)
	w.U8(c.BearerID)
	w.U32(c.MMETEID)
	w.U32(c.SGWTEID)
	w.U32(c.ENBTEID)
	w.U32(c.PDNAddr)
	w.String16(c.APN)
	w.U32(c.ENBID)
	w.U32(c.ENBUEID)
	w.U32(c.MMEUEID)
	w.U32(c.T3412Sec)
	w.F64(c.AccessFreq)
	w.String16(c.MasterMMP)
	w.U16(uint16(len(c.ReplicaMMPs)))
	for _, rID := range c.ReplicaMMPs {
		w.String16(rID)
	}
	w.String16(c.RemoteDC)
	w.U64(c.Version)
	return w.Bytes()
}

// ErrCorrupt indicates an undecodable context blob.
var ErrCorrupt = errors.New("state: corrupt context")

// Unmarshal decodes a context encoded by Marshal.
func Unmarshal(b []byte) (*UEContext, error) {
	r := wire.NewReader(b)
	c := &UEContext{}
	c.IMSI = r.U64()
	g, err := guti.Decode(r.Raw(guti.EncodedLen))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	c.GUTI = g
	c.Mode = Mode(r.U8())
	c.TAI = r.U16()
	nTAI := int(r.U16())
	if nTAI > 0 {
		if nTAI > r.Remaining()/2 {
			return nil, fmt.Errorf("%w: TAI list %d", ErrCorrupt, nTAI)
		}
		c.TAIList = make([]uint16, nTAI)
		for i := range c.TAIList {
			c.TAIList[i] = r.U16()
		}
	}
	copy(c.Security.KASME[:], r.Raw(nas.KeySize))
	copy(c.Security.KNASint[:], r.Raw(nas.KeySize))
	c.Security.Alg = r.U8()
	c.Security.ULCount = r.U32()
	c.Security.DLCount = r.U32()
	c.Security.KSI = r.U8()
	c.BearerID = r.U8()
	c.MMETEID = r.U32()
	c.SGWTEID = r.U32()
	c.ENBTEID = r.U32()
	c.PDNAddr = r.U32()
	c.APN = r.String16()
	c.ENBID = r.U32()
	c.ENBUEID = r.U32()
	c.MMEUEID = r.U32()
	c.T3412Sec = r.U32()
	c.AccessFreq = r.F64()
	c.MasterMMP = r.String16()
	nRep := int(r.U16())
	if nRep > 0 {
		if nRep > r.Remaining()/2 {
			return nil, fmt.Errorf("%w: replica list %d", ErrCorrupt, nRep)
		}
		c.ReplicaMMPs = make([]string, nRep)
		for i := range c.ReplicaMMPs {
			c.ReplicaMMPs[i] = r.String16()
		}
	}
	c.RemoteDC = r.String16()
	c.Version = r.U64()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return c, nil
}

// Clone deep-copies the context.
func (c *UEContext) Clone() *UEContext {
	cp := *c
	if c.TAIList != nil {
		cp.TAIList = append([]uint16(nil), c.TAIList...)
	}
	if c.ReplicaMMPs != nil {
		cp.ReplicaMMPs = append([]string(nil), c.ReplicaMMPs...)
	}
	return &cp
}

// Size approximates the stored footprint in bytes (used for the memory
// side of VM provisioning).
func (c *UEContext) Size() int { return len(c.Marshal()) }

// Store is a concurrency-safe UE context store keyed by GUTI, as held by
// one MMP VM. It distinguishes master entries (this VM owns the device)
// from replica entries (held for load-balancing), since provisioning
// accounts for both but procedures behave differently on each.
type Store struct {
	mu      sync.RWMutex
	byGUTI  map[guti.GUTI]*UEContext
	replica map[guti.GUTI]bool // true if this entry is a replica copy
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byGUTI:  make(map[guti.GUTI]*UEContext),
		replica: make(map[guti.GUTI]bool),
	}
}

// PutMaster stores ctx as a master entry.
func (s *Store) PutMaster(ctx *UEContext) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byGUTI[ctx.GUTI] = ctx
	s.replica[ctx.GUTI] = false
}

// ErrStale is returned when applying a replica update older than the
// stored version.
var ErrStale = errors.New("state: stale replica update")

// ApplyReplica stores ctx as a replica entry. Updates with a version not
// newer than the stored one return ErrStale and leave the store
// unchanged, making replication idempotent and reordering-safe.
//
// A newer push targeting an entry this store holds as *master* merges
// promote-aware: the content is refreshed (the peer legitimately served
// newer traffic for the device) but the entry stays master — replication
// must never silently demote mastership, e.g. when a late push from a
// dead MMP races with this VM's failover promotion. Mastership only
// changes via Promote/PutMaster/Delete.
func (s *Store) ApplyReplica(ctx *UEContext) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byGUTI[ctx.GUTI]; ok {
		if old.Version >= ctx.Version {
			return ErrStale
		}
		s.byGUTI[ctx.GUTI] = ctx
		// Keep the existing master/replica status: only the content is
		// refreshed for entries already held as master.
		return nil
	}
	s.byGUTI[ctx.GUTI] = ctx
	s.replica[ctx.GUTI] = true
	return nil
}

// Promote flips the entry for g from replica to master, returning the
// stored context. It reports false (and promotes nothing) if the entry
// is absent; promoting a master entry is a no-op reported as true.
func (s *Store) Promote(g guti.GUTI) (*UEContext, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byGUTI[g]
	if !ok {
		return nil, false
	}
	s.replica[g] = false
	return c, true
}

// PromoteMatching promotes every replica entry matching pred to master
// and returns the promoted contexts. Master entries are never visited.
// The failover path uses it to take ownership of the devices a dead MMP
// mastered.
func (s *Store) PromoteMatching(pred func(ctx *UEContext) bool) []*UEContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*UEContext
	for g, c := range s.byGUTI {
		if s.replica[g] && pred(c) {
			s.replica[g] = false
			out = append(out, c)
		}
	}
	return out
}

// Get returns the context for g and whether it is present.
func (s *Store) Get(g guti.GUTI) (*UEContext, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.byGUTI[g]
	return c, ok
}

// IsReplica reports whether the entry for g is a replica copy.
func (s *Store) IsReplica(g guti.GUTI) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replica[g]
}

// Delete removes the entry for g.
func (s *Store) Delete(g guti.GUTI) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byGUTI, g)
	delete(s.replica, g)
}

// Len reports total entries (masters + replicas).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byGUTI)
}

// MasterCount reports master entries only.
func (s *Store) MasterCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for g := range s.byGUTI {
		if !s.replica[g] {
			n++
		}
	}
	return n
}

// Range calls fn for every entry until fn returns false. The callback
// must not mutate the store.
func (s *Store) Range(fn func(ctx *UEContext, isReplica bool) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for g, c := range s.byGUTI {
		if !fn(c, s.replica[g]) {
			return
		}
	}
}
