package state

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"scale/internal/guti"
)

func sampleContext() *UEContext {
	return &UEContext{
		IMSI:        123456789012345,
		GUTI:        guti.GUTI{PLMN: guti.PLMN{MCC: 310, MNC: 26}, MMEGI: 1, MMEC: 2, MTMSI: 99},
		Mode:        Active,
		TAI:         7,
		TAIList:     []uint16{7, 8},
		BearerID:    5,
		MMETEID:     100,
		SGWTEID:     200,
		ENBTEID:     300,
		PDNAddr:     0x0A000001,
		APN:         "internet",
		ENBID:       12,
		ENBUEID:     13,
		MMEUEID:     14,
		T3412Sec:    3240,
		AccessFreq:  0.42,
		MasterMMP:   "mmp-3",
		ReplicaMMPs: []string{"mmp-5"},
		RemoteDC:    "dc-2",
		Version:     17,
	}
}

// ctxEqual compares contexts by their canonical wire encoding: short
// TAI lists may live in the inline array or on the heap depending on
// how the context was built, so field-level DeepEqual would flag
// representation differences that are semantically identical.
func ctxEqual(a, b *UEContext) bool {
	return bytes.Equal(a.Marshal(), b.Marshal())
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	c := sampleContext()
	c.Security.Establish([32]byte{1, 2, 3}, 1, 4)
	c.Security.ULCount = 9
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !ctxEqual(got, c) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, c)
	}
}

func TestMarshalMinimalContext(t *testing.T) {
	c := &UEContext{GUTI: guti.GUTI{MTMSI: 1}}
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !ctxEqual(got, c) {
		t.Fatalf("minimal round trip mismatch")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	c := sampleContext()
	b := c.Marshal()
	for _, n := range []int{0, 5, len(b) / 2, len(b) - 1} {
		if _, err := Unmarshal(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v", n, err)
		}
	}
	if _, err := Unmarshal(append(b, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTouchAndDecay(t *testing.T) {
	c := &UEContext{}
	v0 := c.Version
	c.Touch(0.3)
	if c.AccessFreq <= 0 || c.AccessFreq > 1 {
		t.Fatalf("freq after touch = %v", c.AccessFreq)
	}
	if c.Version != v0+1 {
		t.Fatal("touch did not bump version")
	}
	for i := 0; i < 100; i++ {
		c.Touch(0.3)
	}
	if math.Abs(c.AccessFreq-1) > 1e-6 {
		t.Fatalf("freq should converge to 1: %v", c.AccessFreq)
	}
	for i := 0; i < 100; i++ {
		c.Decay(0.3)
	}
	if c.AccessFreq > 1e-6 {
		t.Fatalf("freq should decay to 0: %v", c.AccessFreq)
	}
	// Invalid alpha falls back rather than corrupting the average.
	c2 := &UEContext{}
	c2.Touch(99)
	if c2.AccessFreq <= 0 || c2.AccessFreq > 1 {
		t.Fatalf("fallback alpha freq = %v", c2.AccessFreq)
	}
}

func TestClone(t *testing.T) {
	c := sampleContext()
	cp := c.Clone()
	if !ctxEqual(c, cp) {
		t.Fatal("clone not equal")
	}
	cp.TAIList[0] = 99
	cp.ReplicaMMPs[0] = "x"
	if c.TAIList[0] == 99 || c.ReplicaMMPs[0] == "x" {
		t.Fatal("clone shares slices")
	}
}

func TestSizePositive(t *testing.T) {
	if s := sampleContext().Size(); s <= 0 || s > 4096 {
		t.Fatalf("size = %d", s)
	}
}

func TestStoreMasterReplica(t *testing.T) {
	s := NewStore()
	c := sampleContext()
	s.PutMaster(c)
	if got, ok := s.Get(c.GUTI); !ok || got != c {
		t.Fatal("get after put failed")
	}
	if s.IsReplica(c.GUTI) {
		t.Fatal("master flagged as replica")
	}
	if s.Len() != 1 || s.MasterCount() != 1 {
		t.Fatalf("len=%d masters=%d", s.Len(), s.MasterCount())
	}

	// Replica on another store.
	s2 := NewStore()
	rep := c.Clone()
	if err := s2.ApplyReplica(rep); err != nil {
		t.Fatal(err)
	}
	if !s2.IsReplica(rep.GUTI) {
		t.Fatal("replica not flagged")
	}
	if s2.MasterCount() != 0 {
		t.Fatal("replica counted as master")
	}
}

func TestApplyReplicaVersioning(t *testing.T) {
	s := NewStore()
	c := sampleContext()
	c.Version = 5
	if err := s.ApplyReplica(c.Clone()); err != nil {
		t.Fatal(err)
	}
	// Same version: stale.
	if err := s.ApplyReplica(c.Clone()); err != ErrStale {
		t.Fatalf("same-version err = %v", err)
	}
	// Older version: stale.
	old := c.Clone()
	old.Version = 3
	if err := s.ApplyReplica(old); err != ErrStale {
		t.Fatalf("old-version err = %v", err)
	}
	// Newer version: accepted.
	newer := c.Clone()
	newer.Version = 9
	newer.Mode = Idle
	if err := s.ApplyReplica(newer); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(c.GUTI)
	if got.Version != 9 || got.Mode != Idle {
		t.Fatalf("stored = %+v", got)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	c := sampleContext()
	s.PutMaster(c)
	s.Delete(c.GUTI)
	if _, ok := s.Get(c.GUTI); ok {
		t.Fatal("get after delete succeeded")
	}
	if s.Len() != 0 {
		t.Fatal("len after delete")
	}
	s.Delete(c.GUTI) // idempotent
}

func TestStoreRange(t *testing.T) {
	s := NewStore()
	for i := uint32(1); i <= 5; i++ {
		c := &UEContext{GUTI: guti.GUTI{MTMSI: i}}
		if i%2 == 0 {
			c.Version = 1
			s.ApplyReplica(c)
		} else {
			s.PutMaster(c)
		}
	}
	var masters, replicas int
	s.Range(func(_ *UEContext, isRep bool) bool {
		if isRep {
			replicas++
		} else {
			masters++
		}
		return true
	})
	if masters != 3 || replicas != 2 {
		t.Fatalf("masters=%d replicas=%d", masters, replicas)
	}
	// Early termination.
	n := 0
	s.Range(func(*UEContext, bool) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop visited %d", n)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := &UEContext{GUTI: guti.GUTI{MTMSI: uint32(g*1000 + i)}, Version: 1}
				s.PutMaster(c)
				s.Get(c.GUTI)
				s.IsReplica(c.GUTI)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 1600 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestModeString(t *testing.T) {
	if Deregistered.String() != "deregistered" || Idle.String() != "idle" || Active.String() != "active" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary contexts.
func TestRoundTripProperty(t *testing.T) {
	f := func(imsi uint64, mtmsi uint32, freq float64, ver uint64, master string, mode uint8) bool {
		if len(master) > 1000 {
			master = master[:1000]
		}
		c := &UEContext{
			IMSI:       imsi,
			GUTI:       guti.GUTI{MTMSI: mtmsi},
			Mode:       Mode(mode % 3),
			AccessFreq: freq,
			MasterMMP:  master,
			Version:    ver,
		}
		got, err := Unmarshal(c.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContextMarshal(b *testing.B) {
	c := sampleContext()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Marshal()
	}
}

func BenchmarkContextUnmarshal(b *testing.B) {
	buf := sampleContext().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStoreDemote(t *testing.T) {
	s := NewStore()
	c := sampleContext()
	s.PutMaster(c)

	if !s.Demote(c.GUTI, "mmp-4") {
		t.Fatal("demote of a master returned false")
	}
	if !s.IsReplica(c.GUTI) {
		t.Fatal("demoted entry not flagged replica")
	}
	if got, _ := s.Get(c.GUTI); got.MasterMMP != "mmp-4" {
		t.Fatalf("MasterMMP = %q, want mmp-4", got.MasterMMP)
	}
	if s.MasterCount() != 0 {
		t.Fatalf("MasterCount = %d after demote, want 0", s.MasterCount())
	}
	// Idempotence and misses: replicas and absent devices are untouched.
	if s.Demote(c.GUTI, "mmp-5") {
		t.Fatal("demote of a replica returned true")
	}
	if got, _ := s.Get(c.GUTI); got.MasterMMP != "mmp-4" {
		t.Fatal("second demote overwrote the master id")
	}
	if s.Demote(guti.GUTI{MTMSI: 12345}, "mmp-4") {
		t.Fatal("demote of an unknown device returned true")
	}

	// Demote then Promote round-trips mastership (drain reversed by a
	// later failover of the new master).
	if _, ok := s.Promote(c.GUTI); !ok {
		t.Fatal("promote after demote failed")
	}
	if s.IsReplica(c.GUTI) || s.MasterCount() != 1 {
		t.Fatal("promote did not restore mastership")
	}
}
