package state

import "scale/internal/guti"

// This file implements the open-addressed context table backing each
// store shard. A GUTI-keyed Go map costs a hashed bucket walk plus GC
// scan work proportional to bucket count; at millions of devices per VM
// the map overhead (bucket headers, overflow pointers, tophash bytes)
// dominates the shard's footprint. The replacement is a robin-hood
// linear-probe table over flat 48-byte entries: probe distances stay
// short and near-uniform (insertions displace richer entries), lookups
// are a cache-friendly linear scan, and deletions backward-shift so the
// table never accumulates tombstones.

// ueKey is a GUTI packed into twelve comparable bytes, so key equality
// inside the probe loop is two integer compares instead of a five-field
// struct compare.
type ueKey struct {
	hi uint64
	lo uint32
}

// packGUTI packs g's identity fields. The packing is injective: every
// field lands in its own bit range of hi/lo.
func packGUTI(g guti.GUTI) ueKey {
	return ueKey{
		hi: uint64(g.PLMN.MCC)<<48 | uint64(g.PLMN.MNC)<<32 | uint64(g.MMEGI)<<16 | uint64(g.MMEC),
		lo: g.MTMSI,
	}
}

// ueEntry is one table slot. dist is the probe-sequence position plus
// one (home slot = 1); zero marks the slot empty. The context stays a
// pointer — the engine holds *UEContext across its own unlock/relock
// windows, so value entries would invalidate live references whenever a
// displacement or growth moved the slot.
type ueEntry struct {
	key     ueKey
	ctx     *UEContext
	dist    uint16
	replica bool
}

// shardHashBits is how many low hash bits the store consumes for shard
// selection (maxShards = 1<<shardHashBits). Slot selection shifts them
// out: within one shard every key shares those bits, so reusing them
// would collapse the table to a fraction of its slots.
const shardHashBits = 8

// minTableSize is the initial slot count on first insert (power of
// two). Tables allocate lazily so idle shards cost one slice header.
const minTableSize = 16

// ueTable is the open-addressed table. Not safe for concurrent use; the
// owning shard's lock serializes access. Entry pointers returned by
// get/upsert are valid only until the next insert or delete.
type ueTable struct {
	entries []ueEntry
	n       int
}

// slot returns k's home slot for the current table size.
//
//scale:hotpath
func (t *ueTable) slot(h uint64) int {
	return int(h>>shardHashBits) & (len(t.entries) - 1)
}

// get returns the entry holding k, or nil. h must be k's GUTI hash.
//
//scale:hotpath
func (t *ueTable) get(h uint64, k ueKey) *ueEntry {
	if len(t.entries) == 0 {
		return nil
	}
	mask := len(t.entries) - 1
	i := t.slot(h)
	for d := uint16(1); ; d++ {
		e := &t.entries[i]
		if e.dist < d {
			// Robin-hood invariant: were k present, it would have
			// displaced this poorer (or empty) entry. Absent.
			return nil
		}
		if e.key == k {
			return e
		}
		i = (i + 1) & mask
	}
}

// upsert returns the entry for k, inserting an empty one (nil ctx) if
// absent; the caller fills ctx/replica under the same shard lock. h
// must be k's GUTI hash.
//
//scale:hotpath
func (t *ueTable) upsert(h uint64, k ueKey) *ueEntry {
	if e := t.get(h, k); e != nil {
		return e
	}
	// Grow at 80% load: robin hood keeps probe variance low up to high
	// load factors, and 80% keeps the worst probe chains short.
	if len(t.entries) == 0 || (t.n+1)*5 > len(t.entries)*4 {
		t.grow()
	}
	t.n++
	return t.insert(h, ueEntry{key: k, dist: 1})
}

// insert places cur by robin-hood displacement: a probing entry steals
// the slot of any entry closer to its own home ("rob the rich"), and
// the displaced entry continues probing. Returns the slot where cur's
// key landed. The table must have a free slot.
func (t *ueTable) insert(h uint64, cur ueEntry) *ueEntry {
	mask := len(t.entries) - 1
	i := t.slot(h)
	var placed *ueEntry
	for {
		e := &t.entries[i]
		if e.dist == 0 {
			*e = cur
			if placed == nil {
				placed = e
			}
			return placed
		}
		if e.dist < cur.dist {
			cur, *e = *e, cur
			if placed == nil {
				placed = e
			}
		}
		cur.dist++
		i = (i + 1) & mask
	}
}

// grow doubles the table (16 slots on first insert) and reinserts every
// entry. Hashes are recomputed from the stored context's GUTI — every
// live entry has its ctx set by the time an insert can trigger growth.
func (t *ueTable) grow() {
	old := t.entries
	size := 2 * len(old)
	if size == 0 {
		size = minTableSize
	}
	t.entries = make([]ueEntry, size)
	for i := range old {
		e := &old[i]
		if e.dist != 0 {
			e.dist = 1
			t.insert(e.ctx.GUTI.Hash(), *e)
		}
	}
}

// del removes k, reporting whether it was present. Deletion
// backward-shifts the following probe chain — every displaced entry
// moves one slot closer to home — so freed slots are immediately
// reusable and no tombstones accumulate.
//
//scale:hotpath
func (t *ueTable) del(h uint64, k ueKey) bool {
	if len(t.entries) == 0 {
		return false
	}
	mask := len(t.entries) - 1
	i := t.slot(h)
	for d := uint16(1); ; d++ {
		e := &t.entries[i]
		if e.dist < d {
			return false
		}
		if e.key == k {
			break
		}
		i = (i + 1) & mask
	}
	for {
		j := (i + 1) & mask
		next := &t.entries[j]
		if next.dist <= 1 {
			t.entries[i] = ueEntry{}
			break
		}
		t.entries[i] = *next
		t.entries[i].dist--
		i = j
	}
	t.n--
	return true
}

// foreach visits every occupied slot until fn returns false, reporting
// whether the walk ran to completion. fn may mutate the entry in place
// (the promote sweep flips replica flags) but must not insert or
// delete.
func (t *ueTable) foreach(fn func(e *ueEntry) bool) bool {
	for i := range t.entries {
		e := &t.entries[i]
		if e.dist != 0 && !fn(e) {
			return false
		}
	}
	return true
}
