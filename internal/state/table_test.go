package state

import (
	"encoding/binary"
	"testing"

	"scale/internal/guti"
)

func tableGUTI(mtmsi uint32) guti.GUTI {
	return guti.GUTI{PLMN: guti.PLMN{MCC: 310, MNC: 26}, MMEGI: 1, MMEC: 2, MTMSI: mtmsi}
}

// checkTableInvariants verifies the structural health of the table:
// occupancy count, the stored probe distances, and the robin-hood
// ordering property that get()'s early exit depends on.
func checkTableInvariants(t testing.TB, tab *ueTable) {
	t.Helper()
	if len(tab.entries) == 0 {
		if tab.n != 0 {
			t.Fatalf("empty table with n=%d", tab.n)
		}
		return
	}
	if len(tab.entries)&(len(tab.entries)-1) != 0 {
		t.Fatalf("table size %d is not a power of two", len(tab.entries))
	}
	if 5*tab.n > 4*len(tab.entries) {
		t.Fatalf("load factor exceeded: %d/%d", tab.n, len(tab.entries))
	}
	mask := len(tab.entries) - 1
	occupied := 0
	for i := range tab.entries {
		e := &tab.entries[i]
		if e.dist == 0 {
			continue
		}
		occupied++
		if e.ctx == nil {
			t.Fatalf("slot %d occupied with nil ctx", i)
		}
		if packGUTI(e.ctx.GUTI) != e.key {
			t.Fatalf("slot %d key does not match its context's GUTI", i)
		}
		home := tab.slot(e.ctx.GUTI.Hash())
		want := uint16((i-home)&mask) + 1
		if e.dist != want {
			t.Fatalf("slot %d: dist=%d, want %d (home %d)", i, e.dist, want, home)
		}
	}
	if occupied != tab.n {
		t.Fatalf("n=%d but %d slots occupied", tab.n, occupied)
	}
}

// tableInsert is the test-side idiom for a full insert: upsert then
// fill the context, as the store does under its shard lock.
func tableInsert(tab *ueTable, g guti.GUTI) *UEContext {
	e := tab.upsert(g.Hash(), packGUTI(g))
	if e.ctx == nil {
		e.ctx = &UEContext{GUTI: g}
	}
	return e.ctx
}

func TestUETableBasic(t *testing.T) {
	tab := &ueTable{}
	g := tableGUTI(42)
	if tab.get(g.Hash(), packGUTI(g)) != nil {
		t.Fatal("get on empty table returned an entry")
	}
	if tab.del(g.Hash(), packGUTI(g)) {
		t.Fatal("del on empty table reported success")
	}
	ctx := tableInsert(tab, g)
	e := tab.get(g.Hash(), packGUTI(g))
	if e == nil || e.ctx != ctx {
		t.Fatal("get after insert did not return the stored context")
	}
	// Upsert of an existing key returns the same entry, not a new one.
	if tab.upsert(g.Hash(), packGUTI(g)).ctx != ctx {
		t.Fatal("upsert of existing key lost the context")
	}
	if tab.n != 1 {
		t.Fatalf("n=%d after one insert", tab.n)
	}
	other := tableGUTI(43)
	if tab.get(other.Hash(), packGUTI(other)) != nil {
		t.Fatal("get of absent key returned an entry")
	}
	if !tab.del(g.Hash(), packGUTI(g)) {
		t.Fatal("del of present key reported absence")
	}
	if tab.get(g.Hash(), packGUTI(g)) != nil {
		t.Fatal("get after delete returned an entry")
	}
	checkTableInvariants(t, tab)
}

func TestUETableGrowth(t *testing.T) {
	tab := &ueTable{}
	const n = 10_000
	for i := uint32(0); i < n; i++ {
		tableInsert(tab, tableGUTI(i))
	}
	if tab.n != n {
		t.Fatalf("n=%d, want %d", tab.n, n)
	}
	checkTableInvariants(t, tab)
	for i := uint32(0); i < n; i++ {
		g := tableGUTI(i)
		e := tab.get(g.Hash(), packGUTI(g))
		if e == nil || e.ctx.GUTI.MTMSI != i {
			t.Fatalf("entry %d lost after growth", i)
		}
	}
}

func TestUETableDeleteBackwardShift(t *testing.T) {
	tab := &ueTable{}
	const n = 4096
	for i := uint32(0); i < n; i++ {
		tableInsert(tab, tableGUTI(i))
	}
	// Delete every other key; the backward shifts must keep every
	// surviving probe chain intact.
	for i := uint32(0); i < n; i += 2 {
		g := tableGUTI(i)
		if !tab.del(g.Hash(), packGUTI(g)) {
			t.Fatalf("delete of %d failed", i)
		}
	}
	checkTableInvariants(t, tab)
	for i := uint32(0); i < n; i++ {
		g := tableGUTI(i)
		e := tab.get(g.Hash(), packGUTI(g))
		if i%2 == 0 && e != nil {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && e == nil {
			t.Fatalf("surviving key %d lost by a backward shift", i)
		}
	}
}

func TestUETableDeletedSlotReuse(t *testing.T) {
	tab := &ueTable{}
	for i := uint32(0); i < 8; i++ {
		tableInsert(tab, tableGUTI(i))
	}
	size := len(tab.entries)
	// Churn delete/reinsert far past the table size: without slot reuse
	// (e.g. tombstones) this would force growth.
	for round := 0; round < 1000; round++ {
		g := tableGUTI(uint32(round % 8))
		if !tab.del(g.Hash(), packGUTI(g)) {
			t.Fatalf("round %d: delete failed", round)
		}
		tableInsert(tab, g)
	}
	if len(tab.entries) != size {
		t.Fatalf("churn grew the table from %d to %d slots", size, len(tab.entries))
	}
	checkTableInvariants(t, tab)
}

func TestUETableForeach(t *testing.T) {
	tab := &ueTable{}
	for i := uint32(0); i < 100; i++ {
		tableInsert(tab, tableGUTI(i))
	}
	seen := 0
	if !tab.foreach(func(e *ueEntry) bool {
		seen++
		e.replica = true // in-place mutation, as the demote sweep does
		return true
	}) {
		t.Fatal("full walk reported early termination")
	}
	if seen != 100 {
		t.Fatalf("foreach visited %d entries, want 100", seen)
	}
	g := tableGUTI(50)
	if e := tab.get(g.Hash(), packGUTI(g)); e == nil || !e.replica {
		t.Fatal("in-place mutation lost")
	}
	// Early termination.
	seen = 0
	if tab.foreach(func(*ueEntry) bool { seen++; return false }) {
		t.Fatal("early stop reported a complete walk")
	}
	if seen != 1 {
		t.Fatalf("early stop visited %d", seen)
	}
}

// FuzzUETable drives the table through arbitrary insert/delete/lookup
// sequences against a Go map model: every lookup must agree with the
// map, and the robin-hood invariants must hold after every growth and
// backward-shift the sequence provokes. The key space is folded to 256
// MTMSIs so deletes hit live keys often.
func FuzzUETable(f *testing.F) {
	seed := func(ops ...byte) []byte { return ops }
	// insert, lookup, delete, reinsert of one key
	f.Add(seed(0, 0, 0, 0, 7, 2, 0, 0, 0, 7, 1, 0, 0, 0, 7, 0, 0, 0, 0, 7))
	// interleaved inserts and deletes across keys
	f.Add(seed(0, 0, 0, 0, 1, 0, 0, 0, 0, 2, 1, 0, 0, 0, 1, 0, 0, 0, 0, 3, 1, 0, 0, 0, 2))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tab := &ueTable{}
		model := make(map[ueKey]*UEContext)
		for len(data) >= 5 {
			op := data[0] % 3
			mtmsi := binary.BigEndian.Uint32(data[1:5]) % 256
			data = data[5:]
			g := tableGUTI(mtmsi)
			h, k := g.Hash(), packGUTI(g)
			switch op {
			case 0: // insert / upsert
				e := tab.upsert(h, k)
				if e.ctx == nil {
					e.ctx = &UEContext{GUTI: g}
				}
				model[k] = e.ctx
			case 1: // delete
				got := tab.del(h, k)
				_, want := model[k]
				if got != want {
					t.Fatalf("del(%d) = %v, model says %v", mtmsi, got, want)
				}
				delete(model, k)
			case 2: // lookup
				e := tab.get(h, k)
				want, ok := model[k]
				if ok != (e != nil) {
					t.Fatalf("get(%d) presence = %v, model says %v", mtmsi, e != nil, ok)
				}
				if ok && e.ctx != want {
					t.Fatalf("get(%d) returned the wrong context", mtmsi)
				}
			}
			if tab.n != len(model) {
				t.Fatalf("n=%d, model has %d", tab.n, len(model))
			}
		}
		checkTableInvariants(t, tab)
		// Every surviving model key must still be reachable.
		for k, want := range model {
			e := tab.get(want.GUTI.Hash(), k)
			if e == nil || e.ctx != want {
				t.Fatalf("model key %v lost", k)
			}
		}
	})
}
