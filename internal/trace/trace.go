// Package trace generates synthetic control-plane workloads: device
// populations with heterogeneous access probabilities and request arrival
// streams over a time horizon.
//
// The paper's evaluation varies exactly these knobs — aggregate signaling
// rate, access-probability skew (Section 4.5: IoT devices with
// predictable, low access frequencies), load skew across VMs (S1's
// L1–L4), and synchronized mass-access surges (Section 3, [19]) — so the
// generators here are the substitution for the production traces and the
// eNodeB python load generator used in the paper's testbed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Procedure enumerates the MME control procedures a request can invoke
// (Section 2, "MME Procedures").
type Procedure int

const (
	// Attach is the initial registration of a powered-on device.
	Attach Procedure = iota
	// ServiceRequest is the Idle→Active transition of a registered device.
	ServiceRequest
	// TAUpdate is a periodic tracking-area update from an Idle device.
	TAUpdate
	// Handover is an inter-eNodeB S1 handover of an Active device.
	Handover
	// Paging is a network-triggered wake-up of an Idle device.
	Paging
	// Detach deregisters the device.
	Detach
	numProcedures
)

// String returns the 3GPP-ish name of the procedure.
func (p Procedure) String() string {
	switch p {
	case Attach:
		return "attach"
	case ServiceRequest:
		return "service-request"
	case TAUpdate:
		return "tau"
	case Handover:
		return "handover"
	case Paging:
		return "paging"
	case Detach:
		return "detach"
	default:
		return fmt.Sprintf("procedure(%d)", int(p))
	}
}

// Device is one subscriber in a synthetic population.
type Device struct {
	IMSI uint64
	// Weight is the access probability w_i ∈ (0,1]: the chance the device
	// generates signaling in an epoch. SCALE's access-aware replication
	// keys off this value.
	Weight float64
	// Predictable marks devices (smart meters etc.) whose connectivity
	// pattern is periodic and hence profileable (Section 4.5).
	Predictable bool
}

// Population is an immutable set of devices plus the precomputed
// machinery to sample them proportionally to weight.
type Population struct {
	Devices []Device
	sumW    float64
	cumW    []float64 // prefix sums for binary-search sampling
}

// WeightDist draws access probabilities for a synthetic population.
type WeightDist interface {
	// Sample returns a weight in (0, 1].
	Sample(rng *rand.Rand) float64
}

// Uniform draws weights uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements WeightDist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	lo, hi := u.Lo, u.Hi
	if lo <= 0 {
		lo = 1e-6
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// Bimodal models an IoT-heavy population: fraction LowFrac of devices
// have weight LowW (mostly dormant sensors), the rest HighW. This is the
// population shape experiment S3 (Figure 11) sweeps.
type Bimodal struct {
	LowFrac     float64
	LowW, HighW float64
}

// Sample implements WeightDist.
func (b Bimodal) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < b.LowFrac {
		return clampWeight(b.LowW)
	}
	return clampWeight(b.HighW)
}

// Zipf draws weights from a truncated Zipf-like distribution with
// exponent S over Levels discrete levels, normalized into (0, 1].
// Captures heavy-tailed access skew of smartphone populations.
type Zipf struct {
	S      float64
	Levels int
}

// Sample implements WeightDist.
func (z Zipf) Sample(rng *rand.Rand) float64 {
	levels := z.Levels
	if levels < 2 {
		levels = 10
	}
	s := z.S
	if s <= 0 {
		s = 1.2
	}
	// Inverse-CDF over the discrete level probabilities.
	var total float64
	for i := 1; i <= levels; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	u := rng.Float64() * total
	var cum float64
	// Level 1 is the most probable and maps to the lowest weight: most
	// devices are cold, a rare few are hot.
	for i := 1; i <= levels; i++ {
		cum += 1 / math.Pow(float64(i), s)
		if u <= cum {
			return float64(i) / float64(levels)
		}
	}
	return 1.0
}

func clampWeight(w float64) float64 {
	if w <= 0 {
		return 1e-6
	}
	if w > 1 {
		return 1
	}
	return w
}

// NewPopulation builds n devices with weights drawn from dist using a
// deterministic seed. IMSIs are sequential starting at base 100000000.
func NewPopulation(n int, seed int64, dist WeightDist) *Population {
	rng := rand.New(rand.NewSource(seed))
	devices := make([]Device, n)
	for i := range devices {
		w := clampWeight(dist.Sample(rng))
		devices[i] = Device{
			IMSI:        100000000 + uint64(i),
			Weight:      w,
			Predictable: rng.Float64() < 0.5,
		}
	}
	return buildPopulation(devices)
}

// FromDevices wraps an explicit device list in a Population.
func FromDevices(devices []Device) *Population {
	cp := make([]Device, len(devices))
	copy(cp, devices)
	return buildPopulation(cp)
}

func buildPopulation(devices []Device) *Population {
	p := &Population{Devices: devices, cumW: make([]float64, len(devices))}
	for i, d := range devices {
		p.sumW += d.Weight
		p.cumW[i] = p.sumW
	}
	return p
}

// Len reports the number of devices.
func (p *Population) Len() int { return len(p.Devices) }

// TotalWeight reports Σ w_i.
func (p *Population) TotalWeight() float64 { return p.sumW }

// SampleIndex draws a device index proportionally to weight.
func (p *Population) SampleIndex(rng *rand.Rand) int {
	if len(p.Devices) == 0 {
		return -1
	}
	u := rng.Float64() * p.sumW
	return sort.SearchFloat64s(p.cumW, u)
}

// LowAccessCount returns K̂(x): the number of devices with w_i ≤ x
// (Section 4.5.1).
func (p *Population) LowAccessCount(x float64) int {
	n := 0
	for _, d := range p.Devices {
		if d.Weight <= x {
			n++
		}
	}
	return n
}

// Arrival is one control-plane request in a generated workload.
type Arrival struct {
	At     time.Duration
	Device int // index into the population
	Proc   Procedure
}

// Mix is a procedure mix; weights need not sum to 1.
type Mix map[Procedure]float64

// DefaultMix approximates the signaling mix of a busy LTE network:
// idle↔active churn dominates, with periodic TAUs, some handovers and
// occasional fresh attaches (Section 2 field numbers).
var DefaultMix = Mix{
	Attach:         0.05,
	ServiceRequest: 0.45,
	TAUpdate:       0.25,
	Handover:       0.15,
	Paging:         0.10,
}

func (m Mix) pick(rng *rand.Rand) Procedure {
	var total float64
	for _, w := range m {
		total += w
	}
	if total <= 0 {
		return ServiceRequest
	}
	u := rng.Float64() * total
	var cum float64
	// Deterministic iteration order: walk procedures in enum order.
	for p := Procedure(0); p < numProcedures; p++ {
		w, ok := m[p]
		if !ok {
			continue
		}
		cum += w
		if u <= cum {
			return p
		}
	}
	return ServiceRequest
}

// Generator produces Poisson arrival streams over a population.
type Generator struct {
	Pop  *Population
	Mix  Mix
	Seed int64
}

// Poisson generates arrivals with aggregate rate (requests/second) over
// the horizon, devices sampled proportionally to weight, procedures drawn
// from the mix. Arrivals are returned sorted by time.
func (g Generator) Poisson(rate float64, horizon time.Duration) []Arrival {
	if rate <= 0 || horizon <= 0 || g.Pop.Len() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(g.Seed))
	mix := g.Mix
	if mix == nil {
		mix = DefaultMix
	}
	var out []Arrival
	t := time.Duration(0)
	for {
		// Exponential inter-arrival with mean 1/rate seconds.
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		t += gap
		if t >= horizon {
			break
		}
		out = append(out, Arrival{At: t, Device: g.Pop.SampleIndex(rng), Proc: mix.pick(rng)})
	}
	return out
}

// Periodic generates the predictable IoT pattern of Section 4.5 ("smart
// meters upload information to the cloud periodically"): every device
// marked Predictable issues proc once per period, phase-shifted
// per-device and jittered within ±jitter/2. Arrivals are sorted.
func (g Generator) Periodic(period, jitter time.Duration, proc Procedure, horizon time.Duration) []Arrival {
	if period <= 0 || horizon <= 0 || g.Pop.Len() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(g.Seed + 2))
	var out []Arrival
	for i, d := range g.Pop.Devices {
		if !d.Predictable {
			continue
		}
		phase := time.Duration(rng.Int63n(int64(period)))
		for t := phase; t < horizon; t += period {
			at := t
			if jitter > 0 {
				at += time.Duration(rng.Int63n(int64(jitter))) - jitter/2
			}
			if at < 0 || at >= horizon {
				continue
			}
			out = append(out, Arrival{At: at, Device: i, Proc: proc})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Surge generates a synchronized mass-access event: n devices (sampled
// without replacement when possible) all issue proc within [start,
// start+window), uniformly. Models the event-triggered simultaneous
// activation of Section 3 ("synchronous mass-access").
func (g Generator) Surge(n int, proc Procedure, start, window time.Duration) []Arrival {
	if n <= 0 || g.Pop.Len() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(g.Seed + 1))
	idx := rng.Perm(g.Pop.Len())
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]Arrival, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Arrival{
			At:     start + time.Duration(rng.Int63n(int64(window)+1)),
			Device: idx[i],
			Proc:   proc,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Merge combines pre-sorted arrival streams into one sorted stream.
func Merge(streams ...[]Arrival) []Arrival {
	var out []Arrival
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}
