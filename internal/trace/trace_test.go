package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPopulationDeterministic(t *testing.T) {
	a := NewPopulation(100, 42, Uniform{Lo: 0.1, Hi: 0.9})
	b := NewPopulation(100, 42, Uniform{Lo: 0.1, Hi: 0.9})
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("len = %d,%d", a.Len(), b.Len())
	}
	for i := range a.Devices {
		if a.Devices[i] != b.Devices[i] {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
}

func TestPopulationWeightsInRange(t *testing.T) {
	for _, dist := range []WeightDist{
		Uniform{Lo: 0.1, Hi: 0.9},
		Bimodal{LowFrac: 0.3, LowW: 0.05, HighW: 0.8},
		Zipf{S: 1.2, Levels: 20},
	} {
		p := NewPopulation(500, 7, dist)
		for _, d := range p.Devices {
			if d.Weight <= 0 || d.Weight > 1 {
				t.Fatalf("%T produced weight %v", dist, d.Weight)
			}
		}
	}
}

func TestBimodalFractions(t *testing.T) {
	p := NewPopulation(10000, 3, Bimodal{LowFrac: 0.25, LowW: 0.1, HighW: 0.9})
	low := p.LowAccessCount(0.2)
	frac := float64(low) / 10000
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("low fraction = %v, want ~0.25", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	p := NewPopulation(10000, 5, Zipf{S: 1.5, Levels: 10})
	// Heavy tail: many more low-weight than high-weight devices.
	low := p.LowAccessCount(0.3)
	high := p.Len() - p.LowAccessCount(0.7)
	if low <= high {
		t.Fatalf("zipf not skewed: low=%d high=%d", low, high)
	}
}

func TestZipfDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := Zipf{} // zero config must still produce valid weights
	for i := 0; i < 100; i++ {
		w := z.Sample(rng)
		if w <= 0 || w > 1 {
			t.Fatalf("zipf default sample = %v", w)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{Lo: 0.5, Hi: 0.2} // hi < lo
	for i := 0; i < 10; i++ {
		if w := u.Sample(rng); w != 0.5 {
			t.Fatalf("degenerate uniform = %v", w)
		}
	}
	u2 := Uniform{Lo: -1, Hi: 0.5} // lo <= 0 clamped
	for i := 0; i < 100; i++ {
		if w := u2.Sample(rng); w <= 0 {
			t.Fatalf("uniform produced non-positive %v", w)
		}
	}
}

func TestSampleIndexProportional(t *testing.T) {
	devices := []Device{
		{IMSI: 1, Weight: 0.9},
		{IMSI: 2, Weight: 0.1},
	}
	p := FromDevices(devices)
	rng := rand.New(rand.NewSource(11))
	counts := [2]int{}
	for i := 0; i < 20000; i++ {
		counts[p.SampleIndex(rng)]++
	}
	frac := float64(counts[0]) / 20000
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("hot device sampled %v, want ~0.9", frac)
	}
}

func TestSampleIndexEmpty(t *testing.T) {
	p := FromDevices(nil)
	if got := p.SampleIndex(rand.New(rand.NewSource(1))); got != -1 {
		t.Fatalf("empty sample = %d", got)
	}
}

func TestLowAccessCount(t *testing.T) {
	p := FromDevices([]Device{{Weight: 0.1}, {Weight: 0.2}, {Weight: 0.5}})
	if got := p.LowAccessCount(0.2); got != 2 {
		t.Fatalf("K̂(0.2) = %d", got)
	}
	if got := p.LowAccessCount(0.05); got != 0 {
		t.Fatalf("K̂(0.05) = %d", got)
	}
}

func TestPoissonRate(t *testing.T) {
	p := NewPopulation(1000, 9, Uniform{Lo: 0.1, Hi: 0.9})
	g := Generator{Pop: p, Seed: 13}
	const rate = 200.0
	horizon := 30 * time.Second
	arr := g.Poisson(rate, horizon)
	want := rate * horizon.Seconds()
	got := float64(len(arr))
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("arrivals = %v, want ~%v", got, want)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if arr[i].At >= horizon {
			t.Fatalf("arrival beyond horizon at %d", i)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	p := NewPopulation(10, 1, Uniform{Lo: 0.5, Hi: 0.5})
	g := Generator{Pop: p, Seed: 1}
	if got := g.Poisson(0, time.Second); got != nil {
		t.Fatalf("rate=0 produced %d arrivals", len(got))
	}
	if got := g.Poisson(10, 0); got != nil {
		t.Fatalf("horizon=0 produced %d arrivals", len(got))
	}
	empty := Generator{Pop: FromDevices(nil), Seed: 1}
	if got := empty.Poisson(10, time.Second); got != nil {
		t.Fatalf("empty population produced %d arrivals", len(got))
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	p := NewPopulation(50, 2, Uniform{Lo: 0.2, Hi: 0.8})
	a := Generator{Pop: p, Seed: 5}.Poisson(50, 5*time.Second)
	b := Generator{Pop: p, Seed: 5}.Poisson(50, 5*time.Second)
	if len(a) != len(b) {
		t.Fatalf("lens differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at %d", i)
		}
	}
	c := Generator{Pop: p, Seed: 6}.Poisson(50, 5*time.Second)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMixPick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := Mix{Attach: 1, Handover: 3}
	counts := map[Procedure]int{}
	for i := 0; i < 10000; i++ {
		counts[m.pick(rng)]++
	}
	if counts[Attach] == 0 || counts[Handover] == 0 {
		t.Fatalf("mix missing procedures: %v", counts)
	}
	ratio := float64(counts[Handover]) / float64(counts[Attach])
	if math.Abs(ratio-3) > 0.5 {
		t.Fatalf("mix ratio = %v, want ~3", ratio)
	}
	// Empty/invalid mix falls back to ServiceRequest.
	var zero Mix
	if got := zero.pick(rng); got != ServiceRequest {
		t.Fatalf("empty mix pick = %v", got)
	}
}

func TestSurge(t *testing.T) {
	p := NewPopulation(500, 8, Uniform{Lo: 0.1, Hi: 0.9})
	g := Generator{Pop: p, Seed: 17}
	arr := g.Surge(200, Attach, 10*time.Second, 2*time.Second)
	if len(arr) != 200 {
		t.Fatalf("surge len = %d", len(arr))
	}
	seen := map[int]bool{}
	for i, a := range arr {
		if a.Proc != Attach {
			t.Fatalf("surge proc = %v", a.Proc)
		}
		if a.At < 10*time.Second || a.At > 12*time.Second {
			t.Fatalf("surge time out of window: %v", a.At)
		}
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("surge not sorted at %d", i)
		}
		if seen[a.Device] {
			t.Fatalf("surge sampled device %d twice", a.Device)
		}
		seen[a.Device] = true
	}
	// n larger than population: clamped, still unique.
	arr2 := g.Surge(1000, Attach, 0, time.Second)
	if len(arr2) != 500 {
		t.Fatalf("clamped surge len = %d", len(arr2))
	}
	if got := g.Surge(0, Attach, 0, time.Second); got != nil {
		t.Fatalf("n=0 surge len = %d", len(got))
	}
}

func TestMerge(t *testing.T) {
	a := []Arrival{{At: 1}, {At: 5}}
	b := []Arrival{{At: 2}, {At: 3}}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("merged len = %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].At < m[i-1].At {
			t.Fatalf("merge not sorted at %d", i)
		}
	}
	if got := Merge(); got != nil && len(got) != 0 {
		t.Fatalf("empty merge = %v", got)
	}
}

func TestProcedureString(t *testing.T) {
	names := map[Procedure]string{
		Attach: "attach", ServiceRequest: "service-request", TAUpdate: "tau",
		Handover: "handover", Paging: "paging", Detach: "detach",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d.String() = %q want %q", int(p), p.String(), want)
		}
	}
	if Procedure(99).String() == "" {
		t.Fatal("unknown procedure String empty")
	}
}

// Property: SampleIndex always returns a valid index and the empirical
// distribution respects ordering of weights.
func TestSampleIndexProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%20) + 2
		rng := rand.New(rand.NewSource(seed))
		devices := make([]Device, count)
		for i := range devices {
			devices[i] = Device{IMSI: uint64(i), Weight: 0.01 + rng.Float64()}
		}
		p := FromDevices(devices)
		for i := 0; i < 100; i++ {
			idx := p.SampleIndex(rng)
			if idx < 0 || idx >= count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicGeneratesPerPredictableDevice(t *testing.T) {
	devices := []Device{
		{IMSI: 1, Weight: 0.5, Predictable: true},
		{IMSI: 2, Weight: 0.5, Predictable: false},
		{IMSI: 3, Weight: 0.5, Predictable: true},
	}
	p := FromDevices(devices)
	g := Generator{Pop: p, Seed: 30}
	arr := g.Periodic(time.Second, 0, TAUpdate, 10*time.Second)
	counts := map[int]int{}
	for i, a := range arr {
		if a.Proc != TAUpdate {
			t.Fatalf("proc = %v", a.Proc)
		}
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("not sorted at %d", i)
		}
		counts[a.Device]++
	}
	if counts[1] != 0 {
		t.Fatalf("unpredictable device generated %d arrivals", counts[1])
	}
	// ~10 per predictable device (phase may clip one).
	for _, d := range []int{0, 2} {
		if counts[d] < 9 || counts[d] > 11 {
			t.Fatalf("device %d arrivals = %d", d, counts[d])
		}
	}
}

func TestPeriodicJitterStaysInHorizon(t *testing.T) {
	p := NewPopulation(100, 31, Uniform{Lo: 0.3, Hi: 0.7})
	g := Generator{Pop: p, Seed: 32}
	horizon := 5 * time.Second
	arr := g.Periodic(time.Second, 400*time.Millisecond, TAUpdate, horizon)
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	for _, a := range arr {
		if a.At < 0 || a.At >= horizon {
			t.Fatalf("arrival out of horizon: %v", a.At)
		}
	}
}

func TestPeriodicDegenerate(t *testing.T) {
	p := NewPopulation(10, 33, Uniform{Lo: 0.5, Hi: 0.5})
	g := Generator{Pop: p, Seed: 34}
	if got := g.Periodic(0, 0, TAUpdate, time.Second); got != nil {
		t.Fatalf("period=0 produced %d", len(got))
	}
	if got := g.Periodic(time.Second, 0, TAUpdate, 0); got != nil {
		t.Fatalf("horizon=0 produced %d", len(got))
	}
}
