package transport

import (
	"io"
	"net"
	"testing"
)

// benchConn returns a framed connection to a draining peer over real
// loopback TCP, so write benchmarks exercise the full syscall path.
func benchConn(b *testing.B) *Conn {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		_, _ = io.Copy(io.Discard, nc)
	}()
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		conn.Close()
		ln.Close()
		<-done
	})
	return conn
}

// BenchmarkConnWriteParallel measures concurrent senders sharing one
// connection — the MLB's fan-in pattern, where every uplink from every
// eNodeB crosses one MLB→MMP conn. With write coalescing, concurrent
// frames share flushes (and so syscalls); the flushes-per-frame metric
// should drop well below 1.
func BenchmarkConnWriteParallel(b *testing.B) {
	conn := benchConn(b)
	payload := make([]byte, 128)
	before := Stats()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := conn.Write(StreamUE, payload); err != nil {
				b.Errorf("write: %v", err)
				return
			}
		}
	})
	b.StopTimer()
	after := Stats()
	frames := after.FramesOut - before.FramesOut
	if frames > 0 {
		b.ReportMetric(float64(after.FlushesOut-before.FlushesOut)/float64(frames), "flushes/frame")
	}
}

// BenchmarkConnReadSerial measures the pooled frame-read path: a peer
// goroutine pumps frames over loopback TCP and the benchmark loop reads
// and frees each one. Steady state should recycle every payload buffer
// (0 allocs/op).
func BenchmarkConnReadSerial(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		wc := NewConn(nc)
		payload := make([]byte, 128)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if wc.Write(StreamUE, payload) != nil {
				return
			}
		}
	}()
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	b.Cleanup(func() {
		close(stop)
		conn.Close()
		<-done
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := conn.Read()
		if err != nil {
			b.Fatal(err)
		}
		msg.Free()
	}
}

// BenchmarkConnWriteSerial is the single-writer reference: with no
// concurrent writer waiting, every frame still flushes immediately, so
// latency-sensitive lone messages are never delayed.
func BenchmarkConnWriteSerial(b *testing.B) {
	conn := benchConn(b)
	payload := make([]byte, 128)
	before := Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Write(StreamUE, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := Stats()
	frames := after.FramesOut - before.FramesOut
	if frames > 0 {
		b.ReportMetric(float64(after.FlushesOut-before.FlushesOut)/float64(frames), "flushes/frame")
	}
}
