package transport

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// memConn is a net.Conn whose read side replays a fixed byte stream and
// whose write side captures into a buffer. It lets the fuzzer feed
// arbitrary frame bytes straight into Conn.Read without a socket pair.
type memConn struct {
	r *bytes.Reader
	w bytes.Buffer
}

func (m *memConn) Read(p []byte) (int, error)  { return m.r.Read(p) }
func (m *memConn) Write(p []byte) (int, error) { return m.w.Write(p) }
func (m *memConn) Close() error                { return nil }
func (m *memConn) LocalAddr() net.Addr         { return &net.TCPAddr{} }
func (m *memConn) RemoteAddr() net.Addr        { return &net.TCPAddr{} }
func (m *memConn) SetDeadline(time.Time) error { return nil }

func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

// frames encodes a sequence of messages with a real Conn and returns
// the raw byte stream — the seeds are genuine wire frames.
func frames(t interface{ Fatalf(string, ...any) }, msgs ...Message) []byte {
	mc := &memConn{r: bytes.NewReader(nil)}
	c := NewConn(mc)
	for _, m := range msgs {
		var err error
		if m.Trace != 0 {
			err = c.WriteTraced(m.Stream, m.Trace, m.Payload)
		} else {
			err = c.Write(m.Stream, m.Payload)
		}
		if err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}
	return mc.w.Bytes()
}

// FuzzFrameRead hardens the frame decoder against arbitrary byte
// streams: Conn.Read must never panic, never return a payload above
// MaxMessageSize, and must keep decoding frames that follow valid ones.
func FuzzFrameRead(f *testing.F) {
	f.Add(frames(f, Message{Stream: 1, Payload: []byte("attach-request")}))
	f.Add(frames(f, Message{Stream: 2, Payload: []byte("paged"), Trace: 0xDEADBEEF}))
	f.Add(frames(f,
		Message{Stream: 1, Payload: []byte("a")},
		Message{Stream: 9, Payload: nil, Trace: 7},
		Message{Stream: 3, Payload: bytes.Repeat([]byte{0x5C}, 300)},
	))
	f.Add([]byte{})
	f.Add([]byte{0x5C})                                          // bare v1 magic
	f.Add([]byte{0x5D, 0, 1, 0, 0, 0, 0})                        // v2 header, missing extension
	f.Add([]byte{0x5C, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})            // oversized length
	f.Add([]byte{0x00, 0, 1, 0, 0, 0, 0})                        // bad magic
	f.Add([]byte{0x5D, 0, 1, 0, 0, 0, 1, 3, 0xFF, 0, 0, 0, 'x'}) // unknown TLV tag

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&memConn{r: bytes.NewReader(data)})
		for {
			msg, err := c.Read()
			if err != nil {
				// Any error is acceptable on garbage input; EOF and
				// short reads end the stream.
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				return
			}
			if len(msg.Payload) > MaxMessageSize {
				t.Fatalf("Read returned %d-byte payload above MaxMessageSize", len(msg.Payload))
			}
			msg.Free()
		}
	})
}

// FuzzFrameRoundTrip writes an arbitrary message through the real
// encoder and requires the decoder to hand back exactly what went in —
// stream id, payload, and trace id — with nothing left in the stream.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint64(0), []byte("initial-ue-message"))
	f.Add(uint16(7), uint64(0x1122334455667788), []byte{})
	f.Add(uint16(0xFFFF), uint64(1), bytes.Repeat([]byte{0xAB}, 1000))

	f.Fuzz(func(t *testing.T, stream uint16, trace uint64, payload []byte) {
		if len(payload) > MaxMessageSize {
			return
		}
		raw := frames(t, Message{Stream: stream, Payload: payload, Trace: trace})
		c := NewConn(&memConn{r: bytes.NewReader(raw)})
		msg, err := c.Read()
		if err != nil {
			t.Fatalf("decode of encoder output failed: %v", err)
		}
		if msg.Stream != stream {
			t.Fatalf("stream = %d, want %d", msg.Stream, stream)
		}
		if !bytes.Equal(msg.Payload, payload) {
			t.Fatalf("payload mismatch: % x vs % x", msg.Payload, payload)
		}
		if msg.Trace != trace {
			t.Fatalf("trace = %#x, want %#x", msg.Trace, trace)
		}
		msg.Free()
		if _, err := c.Read(); err == nil {
			t.Fatal("stream had trailing bytes after one frame")
		}
	})
}
