package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestConnOnCloseFiresOnce(t *testing.T) {
	a, b := Pipe()
	defer b.Close()

	var fired atomic.Int32
	a.OnClose(func() { fired.Add(1) })
	a.OnClose(func() { fired.Add(1) })

	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Second close is an idempotent no-op: hooks must not re-fire.
	a.Close()
	if got := fired.Load(); got != 2 {
		t.Fatalf("hooks fired %d times, want 2 (one per registration)", got)
	}
}

func TestConnOnCloseAfterCloseRunsImmediately(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	a.Close()

	var fired atomic.Bool
	a.OnClose(func() { fired.Store(true) })
	if !fired.Load() {
		t.Fatal("hook registered after close did not run immediately")
	}
}

func TestConnOnCloseConcurrent(t *testing.T) {
	// Hooks racing Close must fire exactly once each, whether they won or
	// lost the race (run with -race).
	a, b := Pipe()
	defer b.Close()

	var fired atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.OnClose(func() { fired.Add(1) })
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.Close()
	}()
	wg.Wait()
	if got := fired.Load(); got != 8 {
		t.Fatalf("hooks fired %d times, want 8", got)
	}
}

func TestServeHooksCloseHandler(t *testing.T) {
	type closeEvent struct {
		conn *Conn
		err  error
	}
	events := make(chan closeEvent, 4)
	srv, err := ServeHooks("127.0.0.1:0", func(conn *Conn, msg Message) {
		conn.Write(msg.Stream, msg.Payload) // echo
	}, func(conn *Conn, err error) {
		events <- closeEvent{conn, err}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Write(3, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if msg, err := client.Read(); err != nil || string(msg.Payload) != "ping" {
		t.Fatalf("echo = %q, %v", msg.Payload, err)
	}
	client.Close()

	select {
	case ev := <-events:
		if ev.conn == nil {
			t.Fatal("close handler got nil conn")
		}
		if ev.err == nil {
			t.Fatal("close handler got nil error for a peer disconnect")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close handler never fired after client disconnect")
	}
}

func TestServeHooksCloseHandlerOnServerClose(t *testing.T) {
	events := make(chan struct{}, 4)
	srv, err := ServeHooks("127.0.0.1:0", func(conn *Conn, msg Message) {},
		func(conn *Conn, err error) { events <- struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer client.Close()
	// Let the server accept the conn before tearing it down.
	if err := client.Write(1, []byte("x")); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	srv.Close()

	select {
	case <-events:
	case <-time.After(2 * time.Second):
		t.Fatal("close handler never fired on server shutdown")
	}
}

func TestServeWithoutHooksStillWorks(t *testing.T) {
	// Serve is ServeHooks with a nil handler — a nil hook must not panic
	// when connections close.
	srv, err := Serve("127.0.0.1:0", func(conn *Conn, msg Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	time.Sleep(20 * time.Millisecond) // readLoop observes the close; must not panic
}
