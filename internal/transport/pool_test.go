package transport

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
)

// drainPayloadPools empties the global read-buffer pools so identity
// assertions below start from a known-empty state regardless of what
// earlier tests left behind.
func drainPayloadPools() {
	for i := range payloadPools {
		p := &payloadPools[i]
		p.mu.Lock()
		p.free = nil
		p.mu.Unlock()
	}
}

func samePayloadBacking(a, b []byte) bool {
	return &a[:1][0] == &b[:1][0]
}

// TestPayloadPoolReuse is the core lifecycle contract: a released buffer
// is handed back by the next Get of the same class, and buffers of
// different classes never cross.
func TestPayloadPoolReuse(t *testing.T) {
	drainPayloadPools()
	a := getPayload(100)
	if len(a) != 100 || cap(a) != 256 {
		t.Fatalf("getPayload(100): len=%d cap=%d, want 100/256", len(a), cap(a))
	}
	PutPayload(a)
	b := getPayload(200)
	if !samePayloadBacking(a, b) {
		t.Fatal("released buffer was not reused by the next same-class Get")
	}
	// A larger request must not receive the small buffer.
	PutPayload(b)
	c := getPayload(512)
	if samePayloadBacking(b, c) {
		t.Fatal("1KiB-class Get returned a 256-cap buffer")
	}
	if cap(c) != 1<<10 {
		t.Fatalf("getPayload(512): cap=%d, want 1024", cap(c))
	}
}

// TestPayloadPoolSubslice: consumers like the RPC caller shave bytes off
// the front of a pooled response before releasing it. The rounded-down
// capacity must still pool (in a smaller class) rather than leak.
func TestPayloadPoolSubslice(t *testing.T) {
	drainPayloadPools()
	a := getPayload(1000) // 1KiB class
	sub := a[8:]          // cap 1016: below the 1KiB class, above 256
	PutPayload(sub)
	b := getPayload(256)
	if !samePayloadBacking(sub, b) {
		t.Fatal("subslice with reduced cap was not pooled into the smaller class")
	}
}

// TestMessageFreeIdempotent: Free must release exactly once; a second
// Free through the same Message is a no-op, so the buffer cannot be
// handed to two readers.
func TestMessageFreeIdempotent(t *testing.T) {
	drainPayloadPools()
	buf := getPayload(64)
	m := Message{Stream: 1, Payload: buf}
	m.Free()
	if m.Payload != nil {
		t.Fatal("Free did not nil the payload")
	}
	m.Free() // must not double-insert
	x := getPayload(64)
	y := getPayload(64)
	if !samePayloadBacking(buf, x) {
		t.Fatal("freed buffer not recycled")
	}
	if samePayloadBacking(x, y) {
		t.Fatal("double Free put the same buffer in the pool twice")
	}
}

// TestPutPayloadDropsOutsized: buffers far above the largest class are
// one-off (bulk state transfer) and must not pin pool memory.
func TestPutPayloadDropsOutsized(t *testing.T) {
	drainPayloadPools()
	huge := make([]byte, 3*(64<<10))
	PutPayload(huge)
	got := getPayload(64 << 10)
	if samePayloadBacking(huge, got) {
		t.Fatal("outsized buffer was retained by the pool")
	}
}

// TestPutPayloadIgnoresTiny: anything below the smallest class is left
// to the GC rather than polluting the 256-byte class with undersized
// buffers a later Get could not satisfy requests from.
func TestPutPayloadIgnoresTiny(t *testing.T) {
	drainPayloadPools()
	PutPayload(make([]byte, 16))
	got := getPayload(200)
	if cap(got) < 200 {
		t.Fatalf("pool handed out an undersized buffer: cap=%d", cap(got))
	}
}

// TestPayloadPoolCapBound: the per-class retention cap must hold so an
// inbound burst cannot pin unbounded memory.
func TestPayloadPoolCapBound(t *testing.T) {
	drainPayloadPools()
	for i := 0; i < payloadPoolCap+50; i++ {
		PutPayload(make([]byte, 256))
	}
	p := &payloadPools[0]
	p.mu.Lock()
	n := len(p.free)
	p.mu.Unlock()
	if n != payloadPoolCap {
		t.Fatalf("class retained %d buffers, want cap %d", n, payloadPoolCap)
	}
}

// TestReadFreeRecyclesAcrossFrames drives the real Conn.Read path and
// checks the pool actually closes the loop: after the first frame is
// freed, subsequent same-class frames reuse its buffer.
func TestReadFreeRecyclesAcrossFrames(t *testing.T) {
	drainPayloadPools()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wc, rc := NewConn(a), NewConn(b)
	go func() {
		for i := 0; i < 3; i++ {
			if err := wc.Write(StreamUE, []byte("pooled-frame-payload")); err != nil {
				return
			}
		}
	}()
	first, err := rc.Read()
	if err != nil {
		t.Fatal(err)
	}
	backing := first.Payload
	first.Free()
	for i := 0; i < 2; i++ {
		msg, err := rc.Read()
		if err != nil {
			t.Fatal(err)
		}
		if !samePayloadBacking(backing, msg.Payload) {
			t.Fatal("steady-state Read did not reuse the freed payload buffer")
		}
		msg.Free()
	}
}

// TestFlushConcurrencyStress hammers one connection's coalescing writev
// path from many goroutines while a peer decodes every frame. Run under
// -race this exercises the pend/owned/flushBufs handoff; the decode side
// verifies no frame is corrupted, dropped, or duplicated by coalescing.
func TestFlushConcurrencyStress(t *testing.T) {
	const (
		writers       = 16
		framesEach    = 400
		payloadStride = 64
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type tally struct {
		seen map[uint64]bool
		err  error
	}
	resc := make(chan tally, 1)
	go func() {
		var tl tally
		tl.seen = make(map[uint64]bool, writers*framesEach)
		defer func() { resc <- tl }()
		nc, err := ln.Accept()
		if err != nil {
			tl.err = err
			return
		}
		defer nc.Close()
		rc := NewConn(nc)
		for len(tl.seen) < writers*framesEach {
			msg, err := rc.Read()
			if err != nil {
				tl.err = err
				return
			}
			if len(msg.Payload) < payloadStride {
				tl.err = io.ErrShortBuffer
				msg.Free()
				return
			}
			id := binary.BigEndian.Uint64(msg.Payload)
			// Every byte of the body must carry the low byte of the id,
			// so interleaved flushes that spliced frames would show up.
			for _, c := range msg.Payload[8:] {
				if c != byte(id) {
					tl.err = io.ErrUnexpectedEOF
					msg.Free()
					return
				}
			}
			if tl.seen[id] {
				tl.err = io.ErrClosedPipe // duplicate
				msg.Free()
				return
			}
			tl.seen[id] = true
			msg.Free()
		}
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < framesEach; i++ {
				id := uint64(w)*framesEach + uint64(i)
				fw := GetFrame()
				fw.U64(id)
				for j := 0; j < payloadStride-8; j++ {
					fw.U8(byte(id))
				}
				if err := conn.WriteFrame(StreamUE, 0, fw); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	tl := <-resc
	if tl.err != nil {
		t.Fatalf("reader failed after %d frames: %v", len(tl.seen), tl.err)
	}
	if len(tl.seen) != writers*framesEach {
		t.Fatalf("reader saw %d frames, want %d", len(tl.seen), writers*framesEach)
	}
}
