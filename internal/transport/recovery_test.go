package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"scale/internal/netem"
)

// TestWriteRecoversAfterTransientError verifies the write path is not
// permanently poisoned by one failed syscall: the erroring frame is
// lost (like a frame inside a dropped TCP window), but the next write
// resets the buffered writer and the stream stays framed — the peer
// decodes every subsequent frame cleanly.
func TestWriteRecoversAfterTransientError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- NewConn(nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	im := netem.NewImpairment(nc, 1)
	client := NewConn(im)
	defer client.Close()
	var server *Conn
	select {
	case server = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	defer server.Close()

	if err := client.Write(1, []byte("before")); err != nil {
		t.Fatalf("write before impairment: %v", err)
	}

	im.FailNextWrites(2)
	sawErr := false
	for i := 0; i < 4; i++ {
		if err := client.Write(2, []byte("during")); err != nil {
			if !errors.Is(err, netem.ErrTransient) {
				t.Fatalf("unexpected write error: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("impaired writes never surfaced an error")
	}
	if err := client.Write(3, []byte("after")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}

	// The peer sees a clean framed stream: whatever frames survived
	// decode in order, and the post-recovery frame always arrives.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := server.SetReadDeadline(deadline); err != nil {
			t.Fatal(err)
		}
		msg, err := server.Read()
		if err != nil {
			t.Fatalf("peer read after recovery: %v", err)
		}
		switch msg.Stream {
		case 1:
			if string(msg.Payload) != "before" {
				t.Fatalf("frame 1 corrupted: %q", msg.Payload)
			}
		case 2:
			if string(msg.Payload) != "during" {
				t.Fatalf("frame 2 corrupted: %q", msg.Payload)
			}
		case 3:
			if string(msg.Payload) != "after" {
				t.Fatalf("frame 3 corrupted: %q", msg.Payload)
			}
			return // post-recovery frame delivered intact
		default:
			t.Fatalf("unexpected stream %d", msg.Stream)
		}
	}
}
