package transport

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the crash-recovery layer under the cluster's long-lived
// connections. The MLB is deliberately soft-state — ring, member set and
// active-mode index are all reconstructible from its peers — so an MLB
// restart should be a non-event: every peer redials with jittered
// exponential backoff, re-announces itself on the fresh connection, and
// replays nothing. The Redialer owns exactly the dial/backoff/cancel
// mechanics; what to re-announce is the caller's OnConnect hook.

// ErrRedialerStopped is returned by Redial after Stop (or when the
// configured attempt budget is exhausted).
var ErrRedialerStopped = errors.New("transport: redialer stopped")

// Redialer defaults.
const (
	DefaultRedialMin = 25 * time.Millisecond
	DefaultRedialMax = 2 * time.Second
)

// RedialerConfig parameterizes a Redialer.
type RedialerConfig struct {
	// Dial establishes one fresh connection (required). Chaos tests wrap
	// the raw conn in a netem.Impairment here, so injected faults apply
	// to every incarnation of the link, not just the first.
	Dial func() (*Conn, error)

	// Min and Max bound the backoff between consecutive failed attempts:
	// it starts at Min, doubles per failure and is capped at Max
	// (defaults DefaultRedialMin / DefaultRedialMax).
	Min, Max time.Duration

	// Jitter is the fraction of each backoff randomized around its
	// nominal value (0 → 0.5; negative disables). Full herds of agents
	// redialing a restarted MLB must not arrive in lockstep.
	Jitter float64

	// MaxAttempts caps consecutive failed attempts before Redial gives
	// up with ErrRedialerStopped (0 = retry until Stop).
	MaxAttempts int

	// OnConnect runs on every fresh connection before Redial returns it
	// — the re-registration hook. An error closes the conn and counts as
	// a failed attempt. The attempt counter restarts at 1 for each
	// Redial call.
	OnConnect func(c *Conn, attempt int) error

	// Seed fixes the jitter RNG for deterministic tests (0 seeds from
	// the clock).
	Seed int64
}

// Redialer re-establishes a connection with jittered exponential
// backoff. It is safe for concurrent use, though the expected pattern is
// a single read loop calling Redial when its connection dies.
type Redialer struct {
	cfg RedialerConfig

	mu  sync.Mutex
	rng *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once

	reconnects atomic.Uint64
}

// NewRedialer validates cfg and builds a Redialer.
func NewRedialer(cfg RedialerConfig) *Redialer {
	if cfg.Dial == nil {
		panic("transport: RedialerConfig.Dial is required")
	}
	if cfg.Min <= 0 {
		cfg.Min = DefaultRedialMin
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultRedialMax
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Redialer{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
	}
}

// backoff computes the jittered sleep before attempt n (1-based; attempt
// 1 dials immediately — the common case is a peer that just restarted).
func (r *Redialer) backoff(attempt int) time.Duration {
	if attempt <= 1 {
		return 0
	}
	d := r.cfg.Min << (attempt - 2)
	if d > r.cfg.Max || d <= 0 { // shift overflow guard
		d = r.cfg.Max
	}
	if r.cfg.Jitter > 0 {
		r.mu.Lock()
		f := 1 + r.cfg.Jitter*(r.rng.Float64()-0.5)
		r.mu.Unlock()
		d = time.Duration(float64(d) * f)
		if d < r.cfg.Min {
			d = r.cfg.Min
		}
	}
	return d
}

// Redial dials until a connection is established and OnConnect accepts
// it, sleeping the jittered backoff between failures. It returns
// ErrRedialerStopped when Stop is called (including mid-sleep) or the
// attempt budget runs out.
func (r *Redialer) Redial() (*Conn, error) {
	for attempt := 1; ; attempt++ {
		if r.cfg.MaxAttempts > 0 && attempt > r.cfg.MaxAttempts {
			return nil, ErrRedialerStopped
		}
		if d := r.backoff(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-r.stop:
				t.Stop()
				return nil, ErrRedialerStopped
			case <-t.C:
			}
		}
		select {
		case <-r.stop:
			return nil, ErrRedialerStopped
		default:
		}
		conn, err := r.cfg.Dial()
		if err != nil {
			continue
		}
		if r.cfg.OnConnect != nil {
			if err := r.cfg.OnConnect(conn, attempt); err != nil {
				conn.Close()
				continue
			}
		}
		// A Stop racing the successful dial must not leak the conn: the
		// caller would never read it.
		select {
		case <-r.stop:
			conn.Close()
			return nil, ErrRedialerStopped
		default:
		}
		r.reconnects.Add(1)
		return conn, nil
	}
}

// Stop cancels any in-flight and all future Redial calls. Idempotent.
func (r *Redialer) Stop() { r.stopOnce.Do(func() { close(r.stop) }) }

// Stopped reports whether Stop was called.
func (r *Redialer) Stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// Reconnects counts connections successfully established by Redial.
func (r *Redialer) Reconnects() uint64 { return r.reconnects.Load() }
