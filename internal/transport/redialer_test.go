package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRedialerReconnects(t *testing.T) {
	var handled atomic.Uint64
	srv, err := Serve("127.0.0.1:0", func(conn *Conn, msg Message) {
		handled.Add(1)
		msg.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var fails atomic.Int32
	fails.Store(3) // first three dials refused
	var onConnect atomic.Uint64
	r := NewRedialer(RedialerConfig{
		Dial: func() (*Conn, error) {
			if fails.Add(-1) >= 0 {
				return nil, errors.New("injected dial failure")
			}
			return Dial(srv.Addr())
		},
		Min:  time.Millisecond,
		Max:  4 * time.Millisecond,
		Seed: 1,
		OnConnect: func(c *Conn, attempt int) error {
			onConnect.Add(1)
			return c.Write(1, []byte("hello"))
		},
	})
	defer r.Stop()

	conn, err := r.Redial()
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer conn.Close()
	if got := r.Reconnects(); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
	if got := onConnect.Load(); got != 1 {
		t.Fatalf("OnConnect ran %d times, want 1", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for handled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if handled.Load() == 0 {
		t.Fatal("re-registration frame never arrived")
	}
}

func TestRedialerOnConnectRejectRetries(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(conn *Conn, msg Message) { msg.Free() })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	attempts := 0
	r := NewRedialer(RedialerConfig{
		Dial: func() (*Conn, error) { return Dial(srv.Addr()) },
		Min:  time.Millisecond,
		Max:  2 * time.Millisecond,
		Seed: 2,
		OnConnect: func(c *Conn, attempt int) error {
			attempts = attempt
			if attempt < 3 {
				return errors.New("not ready")
			}
			return nil
		},
	})
	defer r.Stop()
	conn, err := r.Redial()
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	conn.Close()
	if attempts != 3 {
		t.Fatalf("accepted on attempt %d, want 3", attempts)
	}
}

func TestRedialerStopCancelsBackoff(t *testing.T) {
	r := NewRedialer(RedialerConfig{
		Dial: func() (*Conn, error) { return nil, errors.New("always down") },
		Min:  30 * time.Second, // a sleep Stop must interrupt
		Max:  time.Minute,
		Seed: 3,
	})
	done := make(chan error, 1)
	go func() {
		_, err := r.Redial()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, ErrRedialerStopped) {
			t.Fatalf("err = %v, want ErrRedialerStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Redial did not observe Stop")
	}
	if !r.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestRedialerMaxAttempts(t *testing.T) {
	dials := 0
	r := NewRedialer(RedialerConfig{
		Dial:        func() (*Conn, error) { dials++; return nil, errors.New("down") },
		Min:         time.Millisecond,
		Max:         time.Millisecond,
		MaxAttempts: 4,
		Seed:        4,
	})
	defer r.Stop()
	if _, err := r.Redial(); !errors.Is(err, ErrRedialerStopped) {
		t.Fatalf("err = %v, want ErrRedialerStopped", err)
	}
	if dials != 4 {
		t.Fatalf("dialed %d times, want 4", dials)
	}
}

func TestRedialerBackoffCappedAndJittered(t *testing.T) {
	r := NewRedialer(RedialerConfig{
		Dial: func() (*Conn, error) { return nil, errors.New("unused") },
		Min:  10 * time.Millisecond,
		Max:  80 * time.Millisecond,
		Seed: 5,
	})
	defer r.Stop()
	if d := r.backoff(1); d != 0 {
		t.Fatalf("attempt 1 backoff = %v, want 0 (immediate)", d)
	}
	for attempt := 2; attempt <= 12; attempt++ {
		d := r.backoff(attempt)
		if d < r.cfg.Min {
			t.Fatalf("attempt %d backoff %v below Min %v", attempt, d, r.cfg.Min)
		}
		// Cap plus the ±25% jitter envelope.
		if max := time.Duration(float64(r.cfg.Max) * 1.25); d > max {
			t.Fatalf("attempt %d backoff %v above jittered cap %v", attempt, d, max)
		}
	}
}

// TestServerHandlerPanicContained locks in per-connection panic
// containment: a poisoned frame kills its connection (via the normal
// close path, so close hooks fire) and bumps the panic counter, while
// the server keeps serving other connections.
func TestServerHandlerPanicContained(t *testing.T) {
	before := Stats().HandlerPanics
	closed := make(chan error, 1)
	srv, err := ServeHooks("127.0.0.1:0", func(conn *Conn, msg Message) {
		poison := string(msg.Payload) == "poison"
		msg.Free()
		if poison {
			panic("poisoned frame")
		}
	}, func(conn *Conn, cause error) {
		select {
		case closed <- cause:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	victim, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	if err := victim.Write(1, []byte("poison")); err != nil {
		t.Fatal(err)
	}
	select {
	case cause := <-closed:
		if !errors.Is(cause, errHandlerPanic) {
			t.Fatalf("close cause = %v, want errHandlerPanic", cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("poisoned connection was not closed")
	}
	if got := Stats().HandlerPanics; got != before+1 {
		t.Fatalf("HandlerPanics = %d, want %d", got, before+1)
	}

	// The server survives: a healthy connection still round-trips.
	echoed := make(chan struct{})
	srv2 := srv // same server; prove it still accepts and serves
	healthy, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := healthy.Write(1, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	go func() {
		// The handler for "fine" does not panic; if the server's accept
		// loop had died, Dial or Write above would have failed.
		close(echoed)
	}()
	<-echoed
}
