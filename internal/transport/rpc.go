package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file layers request/response correlation over framed connections.
// S6a and S11 are request/response protocols (Diameter and GTP-C carry
// sequence numbers); here an 8-byte sequence number prefixes each payload
// so a client can keep many calls in flight on one connection.

// ErrCallerClosed is returned for calls on a closed Caller.
var ErrCallerClosed = errors.New("transport: caller closed")

// ErrCallTimeout is returned when a call's response does not arrive
// within the caller's timeout. The connection stays usable — a slow
// response is dropped on arrival, not confused with a later call.
var ErrCallTimeout = errors.New("transport: rpc call timed out")

// DefaultCallTimeout bounds every RPC round trip unless overridden with
// SetTimeout. Unbounded calls were the audit finding behind it: one
// wedged HSS/S-GW response would park a procedure goroutine (and its
// shard's admission reservation) forever.
const DefaultCallTimeout = 10 * time.Second

// Caller issues correlated request/response calls over a framed
// connection. It is safe for concurrent use; responses may arrive in any
// order.
type Caller struct {
	conn    *Conn
	timeout time.Duration

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan []byte
	closed  bool
	err     error
}

// NewCaller wraps conn and starts its response reader. The caller owns
// the connection's read side; do not call conn.Read elsewhere.
func NewCaller(conn *Conn) *Caller {
	c := &Caller{conn: conn, timeout: DefaultCallTimeout, pending: make(map[uint64]chan []byte)}
	go c.readLoop()
	return c
}

// SetTimeout overrides the per-call response deadline (0 disables —
// only for tests that deliberately wedge a peer).
func (c *Caller) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

func (c *Caller) readLoop() {
	for {
		msg, err := c.conn.Read()
		if err != nil {
			c.fail(err)
			return
		}
		if len(msg.Payload) < 8 {
			msg.Free()
			c.fail(fmt.Errorf("transport: rpc response shorter than sequence header"))
			return
		}
		seq := binary.BigEndian.Uint64(msg.Payload[:8])
		c.mu.Lock()
		ch, ok := c.pending[seq]
		delete(c.pending, seq)
		c.mu.Unlock()
		if ok {
			// The waiter receives the full pooled payload (sequence
			// header included) and owns it from here; Call strips the
			// header before returning.
			ch <- msg.Payload
		} else {
			// Late response after the call was abandoned: nobody will
			// free it downstream.
			msg.Free()
		}
	}
}

func (c *Caller) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.err = err
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
}

// Call sends payload on stream and blocks for the correlated response.
// The response buffer comes from the transport's read pool: callers
// release it with PutPayload once decoded.
//
//scale:hotpath
func (c *Caller) Call(stream uint16, payload []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrCallerClosed
		}
		return nil, err
	}
	c.seq++
	seq := c.seq
	timeout := c.timeout
	//scale:allow hotpathalloc one channel per in-flight RPC; fail() closes it, so it cannot be pooled
	ch := make(chan []byte, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	fw := GetFrame()
	fw.U64(seq)
	fw.Raw(payload)
	if err := c.conn.WriteFrame(stream, 0, fw); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		expired = timer.C
		defer timer.Stop()
	}
	var full []byte
	var ok bool
	select {
	case full, ok = <-ch:
	case <-expired:
		// Abandon the call. If the read loop claimed the pending entry
		// first it is committed to sending on ch (buffered), so receive
		// and recycle rather than leak the pooled payload.
		c.mu.Lock()
		_, mine := c.pending[seq]
		delete(c.pending, seq)
		c.mu.Unlock()
		if mine {
			return nil, ErrCallTimeout
		}
		if late, open := <-ch; open {
			PutPayload(late)
		}
		return nil, ErrCallTimeout
	}
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrCallerClosed
		}
		return nil, err
	}
	// Strip the sequence header by shifting the body down in place:
	// subslicing the front would shrink the buffer's usable capacity
	// below its size class and stop it from pooling on PutPayload.
	n := copy(full, full[8:])
	return full[:n], nil
}

// Close tears down the caller and its connection; in-flight calls fail.
func (c *Caller) Close() error {
	c.fail(ErrCallerClosed)
	return c.conn.Close()
}

// RPCHandler computes a response payload for a request payload.
type RPCHandler func(payload []byte) []byte

// ServeRPC runs an RPC server: every inbound message is answered on the
// same stream with the sequence number echoed. Malformed frames (missing
// sequence header) are dropped. Returns when addr's listener is closed.
func ServeRPC(addr string, handler RPCHandler) (*Server, error) {
	return Serve(addr, func(conn *Conn, msg Message) {
		if len(msg.Payload) < 8 {
			msg.Free()
			return
		}
		resp := handler(msg.Payload[8:])
		fw := GetFrame()
		fw.Raw(msg.Payload[:8]) // echo the sequence header
		fw.Raw(resp)
		msg.Free()
		// Best-effort: a failed write means the peer went away and its
		// reader will observe the close.
		_ = conn.WriteFrame(msg.Stream, 0, fw)
	})
}
