package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startEchoRPC(t testing.TB) (*Server, *Caller) {
	t.Helper()
	srv, err := ServeRPC("127.0.0.1:0", func(p []byte) []byte {
		return append([]byte("re:"), p...)
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return srv, NewCaller(conn)
}

func TestCallBasic(t *testing.T) {
	srv, caller := startEchoRPC(t)
	defer srv.Close()
	defer caller.Close()

	resp, err := caller.Call(StreamCommon, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:ping" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestCallEmptyPayload(t *testing.T) {
	srv, caller := startEchoRPC(t)
	defer srv.Close()
	defer caller.Close()
	resp, err := caller.Call(StreamCommon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, caller := startEchoRPC(t)
	defer srv.Close()
	defer caller.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			for j := 0; j < 50; j++ {
				resp, err := caller.Call(StreamCommon, []byte(want))
				if err != nil {
					t.Error(err)
					return
				}
				if string(resp) != "re:"+want {
					t.Errorf("cross-talk: got %q want re:%s", resp, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestCallAfterClose(t *testing.T) {
	srv, caller := startEchoRPC(t)
	defer srv.Close()
	caller.Close()
	if _, err := caller.Call(StreamCommon, []byte("x")); err == nil {
		t.Fatal("call after close succeeded")
	}
}

func TestCallFailsWhenServerDies(t *testing.T) {
	srv, caller := startEchoRPC(t)
	defer caller.Close()

	// Slow handler variant: close the server mid-call by using a fresh
	// pair where the server never answers.
	srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := caller.Call(StreamCommon, []byte("never"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call against dead server succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call did not fail after server close")
	}
}

func TestServerIgnoresShortFrames(t *testing.T) {
	srv, err := ServeRPC("127.0.0.1:0", func(p []byte) []byte { return p })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame shorter than the 8-byte seq header must be dropped, not
	// crash the server; a subsequent well-formed call still works.
	if err := conn.Write(StreamCommon, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	caller := NewCaller(conn)
	resp, err := caller.Call(StreamCommon, []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("ok")) {
		t.Fatalf("resp = %q", resp)
	}
}

func BenchmarkRPCCall(b *testing.B) {
	srv, caller := startEchoRPC(b)
	defer srv.Close()
	defer caller.Close()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Call(StreamCommon, payload); err != nil {
			b.Fatal(err)
		}
	}
}
