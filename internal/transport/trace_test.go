package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// writeOnlyConn adapts a bytes.Buffer into a net.Conn so tests can
// inspect (or hand-craft) raw frame bytes without a socket.
type writeOnlyConn struct {
	buf *bytes.Buffer
}

func (c writeOnlyConn) Read(p []byte) (int, error)         { return c.buf.Read(p) }
func (c writeOnlyConn) Write(p []byte) (int, error)        { return c.buf.Write(p) }
func (c writeOnlyConn) Close() error                       { return nil }
func (c writeOnlyConn) LocalAddr() net.Addr                { return nil }
func (c writeOnlyConn) RemoteAddr() net.Addr               { return nil }
func (c writeOnlyConn) SetDeadline(t time.Time) error      { return nil }
func (c writeOnlyConn) SetReadDeadline(t time.Time) error  { return nil }
func (c writeOnlyConn) SetWriteDeadline(t time.Time) error { return nil }

// TestTraceRoundTrip covers the v2 header extension: frames written
// with a trace id carry it, frames without one use the v1 layout and
// read back with Trace == 0.
func TestTraceRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const trace = uint64(0xDEADBEEFCAFE0123)
	go func() {
		if err := a.WriteTraced(StreamUE, trace, []byte("attach")); err != nil {
			t.Error(err)
		}
		if err := a.Write(StreamCommon, []byte("setup")); err != nil {
			t.Error(err)
		}
	}()

	msg, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Trace != trace || msg.Stream != StreamUE || string(msg.Payload) != "attach" {
		t.Fatalf("traced frame = %+v", msg)
	}
	msg, err = b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Trace != 0 || msg.Stream != StreamCommon || string(msg.Payload) != "setup" {
		t.Fatalf("untraced frame = %+v", msg)
	}
}

// TestUntracedFrameIsV1Layout asserts WriteTraced with trace id 0
// emits byte-for-byte the legacy v1 frame — the interop guarantee for
// peers that predate the extension.
func TestUntracedFrameIsV1Layout(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(writeOnlyConn{&buf})
	if err := c.WriteTraced(3, 0, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	want := []byte{magic, 0, 3, 0, 0, 0, 2, 0xAA, 0xBB}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame = %x, want %x", buf.Bytes(), want)
	}
}

// TestTracedFrameLayout pins the v2 wire format so the extension block
// stays stable across refactors.
func TestTracedFrameLayout(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(writeOnlyConn{&buf})
	if err := c.WriteTraced(1, 0x1122334455667788, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	want := []byte{
		magicV2, 0, 1, 0, 0, 0, 1, // magic, stream, payload len
		10,   // extension block length
		0x01, // extTrace
		8,    // value length
		0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88,
		0xCC, // payload
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frame = %x, want %x", got, want)
	}
}

// TestUnknownExtensionSkipped asserts a v2 reader tolerates extension
// types it does not understand (future header fields).
func TestUnknownExtensionSkipped(t *testing.T) {
	var buf bytes.Buffer
	// Hand-build: unknown ext (type 0x7F, 3 bytes) then trace ext.
	buf.WriteByte(magicV2)
	hdr := make([]byte, 6)
	binary.BigEndian.PutUint16(hdr[0:2], StreamUE)
	binary.BigEndian.PutUint32(hdr[2:6], 2)
	buf.Write(hdr)
	buf.WriteByte(5 + 10)                           // ext block length
	buf.Write([]byte{0x7F, 3, 1, 2, 3})             // unknown TLV
	buf.Write([]byte{extTrace, 8})                  // trace TLV header
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0x02, 0x01}) // trace value
	buf.Write([]byte{0xEE, 0xFF})                   // payload

	c := NewConn(writeOnlyConn{&buf})
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Trace != 0x0201 || !bytes.Equal(msg.Payload, []byte{0xEE, 0xFF}) {
		t.Fatalf("msg = %+v", msg)
	}
}

// TestMalformedExtensionRejected asserts a TLV overrunning the block
// is a protocol error, not a silent desync.
func TestMalformedExtensionRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(magicV2)
	hdr := make([]byte, 6)
	binary.BigEndian.PutUint16(hdr[0:2], StreamUE)
	binary.BigEndian.PutUint32(hdr[2:6], 0)
	buf.Write(hdr)
	buf.WriteByte(2)                 // ext block length: 2 bytes
	buf.Write([]byte{extTrace, 200}) // claims 200-byte value — overruns

	c := NewConn(writeOnlyConn{&buf})
	if _, err := c.Read(); !errors.Is(err, ErrBadExtension) {
		t.Fatalf("err = %v, want ErrBadExtension", err)
	}
}

// TestTracePropagatesThroughServer runs a traced frame through a real
// Server and checks the handler sees the id.
func TestTracePropagatesThroughServer(t *testing.T) {
	got := make(chan uint64, 1)
	srv, err := Serve("127.0.0.1:0", func(_ *Conn, msg Message) {
		got <- msg.Trace
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const trace = uint64(0xABCD)
	if err := conn.WriteTraced(StreamUE, trace, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if id := <-got; id != trace {
		t.Fatalf("server saw trace %x, want %x", id, trace)
	}
}

func TestWireStatsAdvance(t *testing.T) {
	before := Stats()
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := a.WriteTraced(StreamUE, 7, []byte("abc")); err != nil {
			t.Error(err)
		}
	}()
	if _, err := b.Read(); err != nil {
		t.Fatal(err)
	}
	<-done // writer increments its counters after Flush returns
	after := Stats()
	if after.FramesOut <= before.FramesOut || after.FramesIn <= before.FramesIn {
		t.Fatalf("frame counters did not advance: %+v -> %+v", before, after)
	}
	if after.BytesIn <= before.BytesIn || after.BytesOut <= before.BytesOut {
		t.Fatalf("byte counters did not advance: %+v -> %+v", before, after)
	}
}
