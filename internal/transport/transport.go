// Package transport provides the reliable, ordered, message-oriented
// transport the EPC control plane runs over.
//
// 3GPP carries S1AP over SCTP; Go's standard library has no SCTP, so
// this package frames discrete messages over TCP: each frame is a 7-byte
// header (magic byte, 2-byte stream id, 4-byte payload length) followed
// by the payload. Stream ids mirror SCTP's stream numbers — the EPC uses
// separate streams for common and per-UE signaling. For the single-homed
// lab topologies in this reproduction the semantics match SCTP's
// (ordered, reliable, message-boundaries preserved).
//
// Version 2 frames (magic 0x5D) append a one-byte extension-block
// length plus a TLV extension block to the fixed header; the only
// extension defined today is the 8-byte trace id the observability
// layer propagates across hops. Frames without a trace id keep the v1
// layout, so peers that predate the extension interoperate as long as
// tracing is off; v2 readers skip unknown extension types, reserving
// room for future header growth without another magic bump.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scale/internal/wire"
)

// Frame header layout.
const (
	magic     = 0x5C // "SCale", v1: no extension block
	magicV2   = 0x5D // v2: header carries a TLV extension block
	headerLen = 7
	// MaxMessageSize bounds a single frame's payload; anything larger is
	// a protocol error (likely desynchronized framing).
	MaxMessageSize = 1 << 20

	// extTrace is the extension type carrying an 8-byte trace id.
	extTrace = 0x01

	// maxFrameHeader is the worst-case header size: v2 fixed header,
	// extension-block length byte, and the trace TLV. GetFrame reserves
	// this much in front of the payload so WriteFrame can fill the
	// header in place and queue header+payload as one contiguous
	// buffer (one iovec per frame).
	maxFrameHeader = headerLen + 1 + 2 + 8

	// flushPendingBytes caps how much a coalescing connection queues
	// before flushing even with writers still waiting — the same bound
	// the old 64 KiB bufio.Writer imposed.
	flushPendingBytes = 64 << 10
)

// Common stream ids, mirroring SCTP stream usage on S1-MME.
const (
	// StreamCommon carries non-UE-associated signaling (S1 Setup, ring
	// updates, load reports).
	StreamCommon uint16 = 0
	// StreamUE carries UE-associated signaling.
	StreamUE uint16 = 1
)

var (
	// ErrMessageTooLarge indicates a frame exceeding MaxMessageSize.
	ErrMessageTooLarge = errors.New("transport: message exceeds maximum size")
	// ErrBadMagic indicates a corrupt or desynchronized stream.
	ErrBadMagic = errors.New("transport: bad frame magic")
	// ErrBadExtension indicates a v2 extension block whose TLVs overrun
	// the declared block length.
	ErrBadExtension = errors.New("transport: malformed header extension")
)

// Message is one framed unit received from a peer. The payload comes
// from the transport's read-buffer pool: the consumer that ends a
// message's dispatch chain calls Free (or PutPayload on the payload)
// exactly once to recycle the buffer. A missed Free degrades to a
// garbage-collected allocation; a double Free would hand the same
// buffer to two readers, so ownership hand-offs must be explicit.
type Message struct {
	Stream  uint16
	Payload []byte
	// Trace is the observability trace id carried in the v2 header
	// extension; zero when the frame had none (v1 peers, untraced
	// traffic).
	Trace uint64
}

// Free returns the message's payload buffer to the read pool and nils
// it, so a second Free through the same Message value is a no-op.
// Copies of the Message share the payload: only the owning copy may
// Free.
//
//scale:hotpath
func (m *Message) Free() {
	if m.Payload != nil {
		PutPayload(m.Payload)
		m.Payload = nil
	}
}

// Read-side buffer pool: size-classed free lists mirroring the encode
// side's wire.Writer pool. Plain mutex-guarded stacks instead of
// sync.Pool — putting a []byte into a sync.Pool boxes the slice header
// (one 24-byte allocation per frame), which is exactly the garbage this
// pool exists to eliminate.
var payloadClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

// payloadPoolCap bounds buffers retained per class so an inbound burst
// cannot pin memory forever.
const payloadPoolCap = 256

type payloadPool struct {
	mu   sync.Mutex
	free [][]byte
}

var payloadPools [len(payloadClasses)]payloadPool

// getPayload returns a length-n buffer from the smallest size class
// that fits; frames above the largest class fall back to a plain
// allocation (they are too rare to pin pool memory for).
//
//scale:hotpath
func getPayload(n int) []byte {
	for i, size := range &payloadClasses {
		if n > size {
			continue
		}
		p := &payloadPools[i]
		p.mu.Lock()
		if last := len(p.free) - 1; last >= 0 {
			b := p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.mu.Unlock()
			return b[:n]
		}
		p.mu.Unlock()
		//scale:allow hotpathalloc pool-miss refill; steady state reuses the freed buffers
		return make([]byte, n, size)
	}
	//scale:allow hotpathalloc frames above the largest size class are rare (bulk state transfer)
	return make([]byte, n)
}

// PutPayload recycles a buffer handed out by Conn.Read (directly or via
// a Caller response). The buffer goes to the largest size class its
// capacity covers, so subslices with a few bytes shaved off the front
// still pool; anything below the smallest class is left to the GC. The
// caller must not touch the buffer afterwards.
//
//scale:hotpath
func PutPayload(b []byte) {
	c := cap(b)
	for i := len(payloadClasses) - 1; i >= 0; i-- {
		if c < payloadClasses[i] {
			continue
		}
		if c > 2*payloadClasses[len(payloadClasses)-1] {
			return // outsized one-off; don't pin it
		}
		p := &payloadPools[i]
		p.mu.Lock()
		if len(p.free) < payloadPoolCap {
			p.free = append(p.free, b[:0])
		}
		p.mu.Unlock()
		return
	}
}

// wireStats holds the package-wide frame counters the observability
// registry scrapes. Plain atomics: the hot path pays four lock-free
// adds per frame.
var wireStats struct {
	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	flushesOut          atomic.Uint64
	handlerPanics       atomic.Uint64
}

// WireStats is a snapshot of the transport's global frame counters.
type WireStats struct {
	FramesIn, FramesOut uint64
	BytesIn, BytesOut   uint64
	// FlushesOut counts buffered-writer flushes (≈ write syscalls). With
	// write coalescing, concurrent senders share flushes, so
	// FlushesOut/FramesOut is the batching factor.
	FlushesOut uint64
	// HandlerPanics counts server frame handlers that panicked; each one
	// cost its connection, not the process.
	HandlerPanics uint64
}

// Stats snapshots frames/bytes moved by every Conn in the process.
func Stats() WireStats {
	return WireStats{
		FramesIn:      wireStats.framesIn.Load(),
		FramesOut:     wireStats.framesOut.Load(),
		BytesIn:       wireStats.bytesIn.Load(),
		BytesOut:      wireStats.bytesOut.Load(),
		FlushesOut:    wireStats.flushesOut.Load(),
		HandlerPanics: wireStats.handlerPanics.Load(),
	}
}

// Conn is a message-oriented connection. Writes are safe for concurrent
// use; reads must be performed by a single goroutine (the usual
// reader-loop pattern).
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	// pend queues complete frames (header+payload, one contiguous
	// buffer each) between group-commit flushes; a flush hands the
	// whole queue to net.Buffers.WriteTo, which gathers it into one
	// writev on TCP instead of memcpying frames into a staging buffer.
	// owned parallels pend with the pooled writers backing each frame;
	// they return to the wire pool once the flush consumed them.
	pend      net.Buffers
	owned     []*wire.Writer
	pendBytes int
	// flushBufs is the scratch slice header handed to net.Buffers.WriteTo
	// (which consumes its argument in place). A Conn field rather than a
	// local: WriteTo takes the address of its receiver, and a local's
	// header would escape — one 24-byte allocation per flush.
	flushBufs net.Buffers
	// wwaiters counts goroutines between "decided to write" and
	// "acquired wmu". The lock holder flushes only when nobody is
	// waiting: under contention, queued frames batch into one flush
	// (and so one write syscall), while a lone writer still flushes
	// every frame immediately. The last writer out always sees zero
	// waiters, so queued frames are never stranded.
	wwaiters atomic.Int32

	// rhdr and rext hold the fixed header and v2 extension block during
	// a read; conn fields rather than locals because they cross the
	// io.Reader interface into ReadFull, where escape analysis would
	// heap-allocate a local every frame. Reads are single-goroutine per
	// connection, so one set per conn suffices.
	rhdr [headerLen]byte
	rext [255]byte

	hookMu   sync.Mutex
	closed   bool
	closeFns []func()
}

// NewConn frames messages over nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
	}
}

// Dial connects to addr over TCP and returns a framed connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// GetFrame returns a pooled frame writer with the worst-case header
// region already reserved in front. Encode the payload into it, then
// hand it to Conn.WriteFrame, which fills the header in place (so
// header+payload ship as one contiguous buffer — one iovec) and owns
// the writer from then on. If the frame is abandoned before WriteFrame,
// release it with PutFrame.
//
//scale:hotpath
func GetFrame() *wire.Writer {
	w := wire.GetWriter()
	w.Pad(maxFrameHeader)
	//scale:allow poolleak ownership transfers to the caller, who must WriteFrame or PutFrame it
	return w
}

// PutFrame recycles a frame writer obtained from GetFrame without
// sending it — the abandon path for callers that hit an error before
// WriteFrame could take ownership.
func PutFrame(w *wire.Writer) { wire.PutWriter(w) }

// Write sends one message on the given stream, copying the payload into
// a pooled frame. It is safe for concurrent use. Flushing is
// opportunistic group commit: a lone writer flushes its frame before
// returning (latency-sensitive control signaling is never held back),
// but when other writers are already queued on the connection the flush
// is left to the last of them, so a burst of concurrent frames shares
// one flush — and one writev syscall — instead of paying one each.
//
//scale:hotpath
func (c *Conn) Write(stream uint16, payload []byte) error {
	return c.WriteTraced(stream, 0, payload)
}

// WriteTraced is Write carrying a trace id in the header extension. A
// zero trace id emits the v1 frame layout, so untraced traffic stays
// readable by peers that predate the extension.
//
//scale:hotpath
func (c *Conn) WriteTraced(stream uint16, traceID uint64, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	fw := GetFrame()
	fw.Raw(payload)
	return c.WriteFrame(stream, traceID, fw)
}

// WriteFrame sends a frame assembled in fw (obtained from GetFrame,
// payload encoded after the reserved header region). WriteFrame always
// takes ownership of fw — success or error, the caller must not touch
// it again. The frame is queued on the connection and flushed by
// whichever writer last holds the lock with no other writer waiting
// (see Write); the flush hands all queued frames to the kernel in one
// gathered writev, zero-copy.
//
//scale:hotpath
func (c *Conn) WriteFrame(stream uint16, traceID uint64, fw *wire.Writer) error {
	buf := fw.Bytes()
	payloadLen := len(buf) - maxFrameHeader
	if payloadLen > MaxMessageSize {
		wire.PutWriter(fw)
		return ErrMessageTooLarge
	}
	// Fill the header right-aligned against the payload inside the
	// reserved region: v1 frames start 11 bytes in, v2 frames (trace
	// TLV) use the whole region.
	start := maxFrameHeader - headerLen
	if traceID != 0 {
		start = 0
	}
	frame := buf[start:]
	binary.BigEndian.PutUint16(frame[1:3], stream)
	binary.BigEndian.PutUint32(frame[3:7], uint32(payloadLen))
	if traceID != 0 {
		frame[0] = magicV2
		frame[7] = 10 // extension block: type(1) + len(1) + value(8)
		frame[8] = extTrace
		frame[9] = 8
		binary.BigEndian.PutUint64(frame[10:18], traceID)
	} else {
		frame[0] = magic
	}

	// The waiter count brackets lock acquisition: incremented before
	// Lock, decremented after. Any writer the holder observes waiting is
	// therefore guaranteed to acquire the lock next and re-run the flush
	// decision, so skipping the flush can never strand frames — the
	// chain always ends with a writer that sees no waiters and flushes.
	c.wwaiters.Add(1)
	c.wmu.Lock()
	c.wwaiters.Add(-1)
	defer c.wmu.Unlock()
	c.pend = append(c.pend, frame)
	c.owned = append(c.owned, fw)
	c.pendBytes += len(frame)
	wireStats.framesOut.Add(1)
	wireStats.bytesOut.Add(uint64(len(frame)))
	if c.wwaiters.Load() == 0 || c.pendBytes >= flushPendingBytes {
		return c.flushLocked()
	}
	return nil
}

// flushLocked hands the queued frames to the kernel in one gathered
// write and recycles their backing writers. Callers hold wmu. On error
// the queued frames are dropped whole — like frames inside a dropped
// TCP window the stream stays framed when the failed syscall wrote
// nothing (how transient refusals surface) — and the connection is
// immediately usable again.
//
//scale:hotpath
func (c *Conn) flushLocked() error {
	if len(c.pend) == 0 {
		return nil
	}
	// net.Buffers.WriteTo consumes the slice in place (on a TCP conn it
	// gathers everything into writev), so give it a scratch copy of the
	// slice header and rebuild the queue state from c.pend afterwards.
	c.flushBufs = c.pend
	_, err := c.flushBufs.WriteTo(c.nc)
	c.flushBufs = nil
	for i, w := range c.owned {
		wire.PutWriter(w)
		c.owned[i] = nil
	}
	c.owned = c.owned[:0]
	for i := range c.pend {
		c.pend[i] = nil
	}
	c.pend = c.pend[:0]
	c.pendBytes = 0
	if err != nil {
		//scale:allow hotpathalloc I/O error path, off the steady-state cycle
		return fmt.Errorf("transport: flush: %w", err)
	}
	wireStats.flushesOut.Add(1)
	return nil
}

// Read blocks for the next message. The returned payload comes from
// the transport's read-buffer pool; whoever ends the message's dispatch
// chain calls Message.Free (or PutPayload) exactly once to recycle it.
//
//scale:hotpath
func (c *Conn) Read() (Message, error) {
	hdr := c.rhdr[:]
	if _, err := io.ReadFull(c.br, hdr); err != nil {
		return Message{}, err
	}
	if hdr[0] != magic && hdr[0] != magicV2 {
		return Message{}, ErrBadMagic
	}
	stream := binary.BigEndian.Uint16(hdr[1:3])
	n := binary.BigEndian.Uint32(hdr[3:7])
	if n > MaxMessageSize {
		return Message{}, ErrMessageTooLarge
	}
	read := headerLen
	var traceID uint64
	if hdr[0] == magicV2 {
		extLen, err := c.br.ReadByte()
		if err != nil {
			//scale:allow hotpathalloc I/O error path, off the steady-state cycle
			return Message{}, fmt.Errorf("transport: short extension length: %w", err)
		}
		// Reads are single-goroutine per connection, so the conn-level
		// scratch buffer holds the extension block with no allocation.
		ext := c.rext[:extLen]
		if _, err := io.ReadFull(c.br, ext); err != nil {
			//scale:allow hotpathalloc I/O error path, off the steady-state cycle
			return Message{}, fmt.Errorf("transport: short extension block: %w", err)
		}
		read += 1 + int(extLen)
		traceID, err = parseExtensions(ext)
		if err != nil {
			return Message{}, err
		}
	}
	payload := getPayload(int(n))
	if _, err := io.ReadFull(c.br, payload); err != nil {
		PutPayload(payload)
		//scale:allow hotpathalloc I/O error path, off the steady-state cycle
		return Message{}, fmt.Errorf("transport: short payload: %w", err)
	}
	wireStats.framesIn.Add(1)
	wireStats.bytesIn.Add(uint64(read + len(payload)))
	return Message{Stream: stream, Payload: payload, Trace: traceID}, nil
}

// parseExtensions walks the v2 TLV block, returning the trace id if
// present. Unknown extension types are skipped — future header fields
// must not break deployed readers.
func parseExtensions(ext []byte) (traceID uint64, err error) {
	for len(ext) > 0 {
		if len(ext) < 2 {
			return 0, ErrBadExtension
		}
		typ, vlen := ext[0], int(ext[1])
		if len(ext) < 2+vlen {
			return 0, ErrBadExtension
		}
		val := ext[2 : 2+vlen]
		if typ == extTrace && vlen == 8 {
			traceID = binary.BigEndian.Uint64(val)
		}
		ext = ext[2+vlen:]
	}
	return traceID, nil
}

// SetReadDeadline sets the deadline for future Read calls.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// OnClose registers fn to run exactly once when the connection closes
// (whichever side initiates it). Registering on an already-closed
// connection runs fn immediately. Hooks run synchronously inside Close,
// so they must not block and must not call Close themselves.
func (c *Conn) OnClose(fn func()) {
	if fn == nil {
		return
	}
	c.hookMu.Lock()
	if c.closed {
		c.hookMu.Unlock()
		fn()
		return
	}
	c.closeFns = append(c.closeFns, fn)
	c.hookMu.Unlock()
}

// Close closes the underlying connection and fires the close hooks. It
// is idempotent: only the first call closes and notifies.
func (c *Conn) Close() error {
	c.hookMu.Lock()
	if c.closed {
		c.hookMu.Unlock()
		return nil
	}
	c.closed = true
	fns := c.closeFns
	c.closeFns = nil
	c.hookMu.Unlock()
	err := c.nc.Close()
	for _, fn := range fns {
		fn()
	}
	return err
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr reports the local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Handler consumes inbound messages from one connection.
type Handler func(conn *Conn, msg Message)

// CloseHandler is notified when a served connection's read loop exits:
// the peer disconnected, the stream desynchronized, or the server shut
// down. err is the read error that terminated the loop (io.EOF for a
// clean peer close). It runs on the connection's reader goroutine, after
// the last message was handled and after the conn was removed from the
// server's set.
type CloseHandler func(conn *Conn, err error)

// Server accepts framed connections and dispatches messages to a
// handler, one reader goroutine per connection.
type Server struct {
	ln      net.Listener
	handler Handler
	onClose CloseHandler

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr. The handler is invoked sequentially per
// connection, concurrently across connections.
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeHooks(addr, handler, nil)
}

// ServeHooks is Serve with a connection-lifecycle hook: onClose (may be
// nil) fires once per connection when its read loop exits. This is how
// stateful fronts (the MLB) learn that a back-end VM died.
func ServeHooks(addr string, handler Handler, onClose CloseHandler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, onClose: onClose, conns: make(map[*Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn *Conn) {
	defer s.wg.Done()
	var cause error
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		if s.onClose != nil {
			s.onClose(conn, cause)
		}
	}()
	for {
		//scale:allow poolleak on the panic-containment path ownership is ambiguous (Message is passed by value, so a recover-side Free could double-put a buffer the handler already released); one leaked buffer per contained panic is the deliberate trade
		msg, err := conn.Read()
		if err != nil {
			cause = err
			return
		}
		if !s.dispatch(conn, msg) {
			cause = errHandlerPanic
			return
		}
	}
}

var errHandlerPanic = errors.New("transport: frame handler panicked")

// dispatch runs the handler with panic containment: one poisoned frame
// costs its connection (closed through the normal lifecycle, so close
// hooks — failover, liveness — fire), never the whole daemon. Reports
// whether the handler completed.
func (s *Server) dispatch(conn *Conn, msg Message) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			wireStats.handlerPanics.Add(1)
			ok = false
		}
	}()
	s.handler(conn, msg)
	return true
}

// Close stops accepting, closes every connection and waits for reader
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Pipe returns a connected pair of framed in-memory connections, useful
// in tests and single-process deployments.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
