// Package transport provides the reliable, ordered, message-oriented
// transport the EPC control plane runs over.
//
// 3GPP carries S1AP over SCTP; Go's standard library has no SCTP, so
// this package frames discrete messages over TCP: each frame is a 7-byte
// header (magic byte, 2-byte stream id, 4-byte payload length) followed
// by the payload. Stream ids mirror SCTP's stream numbers — the EPC uses
// separate streams for common and per-UE signaling. For the single-homed
// lab topologies in this reproduction the semantics match SCTP's
// (ordered, reliable, message-boundaries preserved).
//
// Version 2 frames (magic 0x5D) append a one-byte extension-block
// length plus a TLV extension block to the fixed header; the only
// extension defined today is the 8-byte trace id the observability
// layer propagates across hops. Frames without a trace id keep the v1
// layout, so peers that predate the extension interoperate as long as
// tracing is off; v2 readers skip unknown extension types, reserving
// room for future header growth without another magic bump.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Frame header layout.
const (
	magic     = 0x5C // "SCale", v1: no extension block
	magicV2   = 0x5D // v2: header carries a TLV extension block
	headerLen = 7
	// MaxMessageSize bounds a single frame's payload; anything larger is
	// a protocol error (likely desynchronized framing).
	MaxMessageSize = 1 << 20

	// extTrace is the extension type carrying an 8-byte trace id.
	extTrace = 0x01
)

// Common stream ids, mirroring SCTP stream usage on S1-MME.
const (
	// StreamCommon carries non-UE-associated signaling (S1 Setup, ring
	// updates, load reports).
	StreamCommon uint16 = 0
	// StreamUE carries UE-associated signaling.
	StreamUE uint16 = 1
)

var (
	// ErrMessageTooLarge indicates a frame exceeding MaxMessageSize.
	ErrMessageTooLarge = errors.New("transport: message exceeds maximum size")
	// ErrBadMagic indicates a corrupt or desynchronized stream.
	ErrBadMagic = errors.New("transport: bad frame magic")
	// ErrBadExtension indicates a v2 extension block whose TLVs overrun
	// the declared block length.
	ErrBadExtension = errors.New("transport: malformed header extension")
)

// Message is one framed unit received from a peer.
type Message struct {
	Stream  uint16
	Payload []byte
	// Trace is the observability trace id carried in the v2 header
	// extension; zero when the frame had none (v1 peers, untraced
	// traffic).
	Trace uint64
}

// wireStats holds the package-wide frame counters the observability
// registry scrapes. Plain atomics: the hot path pays four lock-free
// adds per frame.
var wireStats struct {
	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	flushesOut          atomic.Uint64
}

// WireStats is a snapshot of the transport's global frame counters.
type WireStats struct {
	FramesIn, FramesOut uint64
	BytesIn, BytesOut   uint64
	// FlushesOut counts buffered-writer flushes (≈ write syscalls). With
	// write coalescing, concurrent senders share flushes, so
	// FlushesOut/FramesOut is the batching factor.
	FlushesOut uint64
}

// Stats snapshots frames/bytes moved by every Conn in the process.
func Stats() WireStats {
	return WireStats{
		FramesIn:   wireStats.framesIn.Load(),
		FramesOut:  wireStats.framesOut.Load(),
		BytesIn:    wireStats.bytesIn.Load(),
		BytesOut:   wireStats.bytesOut.Load(),
		FlushesOut: wireStats.flushesOut.Load(),
	}
}

// Conn is a message-oriented connection. Writes are safe for concurrent
// use; reads must be performed by a single goroutine (the usual
// reader-loop pattern).
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
	// werr records that the buffered writer latched a write error. bufio
	// makes errors sticky, so without recovery one transient refusal
	// from the OS (or an impaired test link) would permanently kill a
	// connection whose socket is still healthy. The next write resets
	// the buffer first: the frames buffered at the moment of failure are
	// lost — like frames inside a dropped TCP window — but the stream
	// stays framed when the failed syscall wrote nothing (how refusals
	// surface). A genuinely dead socket keeps erroring and is detected
	// by the read loop and close hook exactly as before.
	werr bool
	// wwaiters counts goroutines between "decided to write" and
	// "acquired wmu". The lock holder flushes only when nobody is
	// waiting: under contention, queued frames batch into one flush
	// (and so one write syscall), while a lone writer still flushes
	// every frame immediately. The last writer out always sees zero
	// waiters, so buffered frames are never stranded.
	wwaiters atomic.Int32

	hookMu   sync.Mutex
	closed   bool
	closeFns []func()
}

// NewConn frames messages over nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Dial connects to addr over TCP and returns a framed connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// Write sends one message on the given stream. It is safe for concurrent
// use. Flushing is opportunistic group commit: a lone writer flushes its
// frame before returning (latency-sensitive control signaling is never
// held in the buffer), but when other writers are already queued on the
// connection the flush is left to the last of them, so a burst of
// concurrent frames shares one flush — and one write syscall — instead
// of paying one each.
//
//scale:hotpath
func (c *Conn) Write(stream uint16, payload []byte) error {
	return c.WriteTraced(stream, 0, payload)
}

// WriteTraced sends one message carrying a trace id in the header
// extension. A zero trace id emits the v1 frame layout, so untraced
// traffic stays readable by peers that predate the extension.
//
//scale:hotpath
func (c *Conn) WriteTraced(stream uint16, traceID uint64, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	// Worst case: v2 header + extLen byte + trace TLV.
	var hdr [headerLen + 1 + 2 + 8]byte
	hdr[0] = magic
	binary.BigEndian.PutUint16(hdr[1:3], stream)
	binary.BigEndian.PutUint32(hdr[3:7], uint32(len(payload)))
	hlen := headerLen
	if traceID != 0 {
		hdr[0] = magicV2
		hdr[7] = 10 // extension block: type(1) + len(1) + value(8)
		hdr[8] = extTrace
		hdr[9] = 8
		binary.BigEndian.PutUint64(hdr[10:18], traceID)
		hlen = headerLen + 1 + 10
	}

	// The waiter count brackets lock acquisition: incremented before
	// Lock, decremented after. Any writer the holder observes waiting is
	// therefore guaranteed to acquire the lock next and re-run the flush
	// decision, so skipping the flush can never strand bytes — the chain
	// always ends with a writer that sees no waiters and flushes.
	c.wwaiters.Add(1)
	c.wmu.Lock()
	c.wwaiters.Add(-1)
	defer c.wmu.Unlock()
	if c.werr {
		c.bw.Reset(c.nc)
		c.werr = false
	}
	if _, err := c.bw.Write(hdr[:hlen]); err != nil {
		c.werr = true
		//scale:allow hotpathalloc I/O error path, off the steady-state cycle
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := c.bw.Write(payload); err != nil {
		c.werr = true
		//scale:allow hotpathalloc I/O error path, off the steady-state cycle
		return fmt.Errorf("transport: write payload: %w", err)
	}
	if c.wwaiters.Load() == 0 {
		if err := c.bw.Flush(); err != nil {
			c.werr = true
			//scale:allow hotpathalloc I/O error path, off the steady-state cycle
			return fmt.Errorf("transport: flush: %w", err)
		}
		wireStats.flushesOut.Add(1)
	}
	wireStats.framesOut.Add(1)
	wireStats.bytesOut.Add(uint64(hlen + len(payload)))
	return nil
}

// Read blocks for the next message. The returned payload is freshly
// allocated and owned by the caller.
//
//scale:hotpath
func (c *Conn) Read() (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return Message{}, err
	}
	if hdr[0] != magic && hdr[0] != magicV2 {
		return Message{}, ErrBadMagic
	}
	stream := binary.BigEndian.Uint16(hdr[1:3])
	n := binary.BigEndian.Uint32(hdr[3:7])
	if n > MaxMessageSize {
		return Message{}, ErrMessageTooLarge
	}
	read := headerLen
	var traceID uint64
	if hdr[0] == magicV2 {
		extLen, err := c.br.ReadByte()
		if err != nil {
			//scale:allow hotpathalloc I/O error path, off the steady-state cycle
			return Message{}, fmt.Errorf("transport: short extension length: %w", err)
		}
		//scale:allow hotpathalloc v2 extension block is rare and tiny; pooled framing is ROADMAP item 4
		ext := make([]byte, extLen)
		if _, err := io.ReadFull(c.br, ext); err != nil {
			//scale:allow hotpathalloc I/O error path, off the steady-state cycle
			return Message{}, fmt.Errorf("transport: short extension block: %w", err)
		}
		read += 1 + int(extLen)
		traceID, err = parseExtensions(ext)
		if err != nil {
			return Message{}, err
		}
	}
	//scale:allow hotpathalloc per-frame payload is handed to the caller; pooled read buffers are ROADMAP item 4
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		//scale:allow hotpathalloc I/O error path, off the steady-state cycle
		return Message{}, fmt.Errorf("transport: short payload: %w", err)
	}
	wireStats.framesIn.Add(1)
	wireStats.bytesIn.Add(uint64(read + len(payload)))
	return Message{Stream: stream, Payload: payload, Trace: traceID}, nil
}

// parseExtensions walks the v2 TLV block, returning the trace id if
// present. Unknown extension types are skipped — future header fields
// must not break deployed readers.
func parseExtensions(ext []byte) (traceID uint64, err error) {
	for len(ext) > 0 {
		if len(ext) < 2 {
			return 0, ErrBadExtension
		}
		typ, vlen := ext[0], int(ext[1])
		if len(ext) < 2+vlen {
			return 0, ErrBadExtension
		}
		val := ext[2 : 2+vlen]
		if typ == extTrace && vlen == 8 {
			traceID = binary.BigEndian.Uint64(val)
		}
		ext = ext[2+vlen:]
	}
	return traceID, nil
}

// SetReadDeadline sets the deadline for future Read calls.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// OnClose registers fn to run exactly once when the connection closes
// (whichever side initiates it). Registering on an already-closed
// connection runs fn immediately. Hooks run synchronously inside Close,
// so they must not block and must not call Close themselves.
func (c *Conn) OnClose(fn func()) {
	if fn == nil {
		return
	}
	c.hookMu.Lock()
	if c.closed {
		c.hookMu.Unlock()
		fn()
		return
	}
	c.closeFns = append(c.closeFns, fn)
	c.hookMu.Unlock()
}

// Close closes the underlying connection and fires the close hooks. It
// is idempotent: only the first call closes and notifies.
func (c *Conn) Close() error {
	c.hookMu.Lock()
	if c.closed {
		c.hookMu.Unlock()
		return nil
	}
	c.closed = true
	fns := c.closeFns
	c.closeFns = nil
	c.hookMu.Unlock()
	err := c.nc.Close()
	for _, fn := range fns {
		fn()
	}
	return err
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr reports the local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Handler consumes inbound messages from one connection.
type Handler func(conn *Conn, msg Message)

// CloseHandler is notified when a served connection's read loop exits:
// the peer disconnected, the stream desynchronized, or the server shut
// down. err is the read error that terminated the loop (io.EOF for a
// clean peer close). It runs on the connection's reader goroutine, after
// the last message was handled and after the conn was removed from the
// server's set.
type CloseHandler func(conn *Conn, err error)

// Server accepts framed connections and dispatches messages to a
// handler, one reader goroutine per connection.
type Server struct {
	ln      net.Listener
	handler Handler
	onClose CloseHandler

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr. The handler is invoked sequentially per
// connection, concurrently across connections.
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeHooks(addr, handler, nil)
}

// ServeHooks is Serve with a connection-lifecycle hook: onClose (may be
// nil) fires once per connection when its read loop exits. This is how
// stateful fronts (the MLB) learn that a back-end VM died.
func ServeHooks(addr string, handler Handler, onClose CloseHandler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, onClose: onClose, conns: make(map[*Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn *Conn) {
	defer s.wg.Done()
	var cause error
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		if s.onClose != nil {
			s.onClose(conn, cause)
		}
	}()
	for {
		msg, err := conn.Read()
		if err != nil {
			cause = err
			return
		}
		s.handler(conn, msg)
	}
}

// Close stops accepting, closes every connection and waits for reader
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Pipe returns a connected pair of framed in-memory connections, useful
// in tests and single-process deployments.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
