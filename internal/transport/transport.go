// Package transport provides the reliable, ordered, message-oriented
// transport the EPC control plane runs over.
//
// 3GPP carries S1AP over SCTP; Go's standard library has no SCTP, so
// this package frames discrete messages over TCP: each frame is a 7-byte
// header (magic byte, 2-byte stream id, 4-byte payload length) followed
// by the payload. Stream ids mirror SCTP's stream numbers — the EPC uses
// separate streams for common and per-UE signaling. For the single-homed
// lab topologies in this reproduction the semantics match SCTP's
// (ordered, reliable, message-boundaries preserved).
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Frame header layout.
const (
	magic     = 0x5C // "SCale"
	headerLen = 7
	// MaxMessageSize bounds a single frame's payload; anything larger is
	// a protocol error (likely desynchronized framing).
	MaxMessageSize = 1 << 20
)

// Common stream ids, mirroring SCTP stream usage on S1-MME.
const (
	// StreamCommon carries non-UE-associated signaling (S1 Setup, ring
	// updates, load reports).
	StreamCommon uint16 = 0
	// StreamUE carries UE-associated signaling.
	StreamUE uint16 = 1
)

var (
	// ErrMessageTooLarge indicates a frame exceeding MaxMessageSize.
	ErrMessageTooLarge = errors.New("transport: message exceeds maximum size")
	// ErrBadMagic indicates a corrupt or desynchronized stream.
	ErrBadMagic = errors.New("transport: bad frame magic")
)

// Message is one framed unit received from a peer.
type Message struct {
	Stream  uint16
	Payload []byte
}

// Conn is a message-oriented connection. Writes are safe for concurrent
// use; reads must be performed by a single goroutine (the usual
// reader-loop pattern).
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
}

// NewConn frames messages over nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Dial connects to addr over TCP and returns a framed connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// Write sends one message on the given stream. It is safe for concurrent
// use; each message is flushed before Write returns so latency-sensitive
// control signaling is never held in the buffer.
func (c *Conn) Write(stream uint16, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var hdr [headerLen]byte
	hdr[0] = magic
	binary.BigEndian.PutUint16(hdr[1:3], stream)
	binary.BigEndian.PutUint32(hdr[3:7], uint32(len(payload)))

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := c.bw.Write(payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

// Read blocks for the next message. The returned payload is freshly
// allocated and owned by the caller.
func (c *Conn) Read() (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return Message{}, err
	}
	if hdr[0] != magic {
		return Message{}, ErrBadMagic
	}
	stream := binary.BigEndian.Uint16(hdr[1:3])
	n := binary.BigEndian.Uint32(hdr[3:7])
	if n > MaxMessageSize {
		return Message{}, ErrMessageTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return Message{}, fmt.Errorf("transport: short payload: %w", err)
	}
	return Message{Stream: stream, Payload: payload}, nil
}

// SetReadDeadline sets the deadline for future Read calls.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr reports the local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Handler consumes inbound messages from one connection.
type Handler func(conn *Conn, msg Message)

// Server accepts framed connections and dispatches messages to a
// handler, one reader goroutine per connection.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr. The handler is invoked sequentially per
// connection, concurrently across connections.
func Serve(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[*Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn *Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		msg, err := conn.Read()
		if err != nil {
			return
		}
		s.handler(conn, msg)
	}
}

// Close stops accepting, closes every connection and waits for reader
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Pipe returns a connected pair of framed in-memory connections, useful
// in tests and single-process deployments.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
