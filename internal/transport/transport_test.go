package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		if err := a.Write(StreamUE, []byte("attach-request")); err != nil {
			t.Error(err)
		}
	}()
	msg, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Stream != StreamUE || string(msg.Payload) != "attach-request" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestEmptyPayload(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write(StreamCommon, nil)
	msg, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Payload) != 0 || msg.Stream != StreamCommon {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestMessageBoundariesPreserved(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var want [][]byte
	for i := 0; i < 50; i++ {
		want = append(want, bytes.Repeat([]byte{byte(i)}, i*7+1))
	}
	go func() {
		for i, p := range want {
			if err := a.Write(uint16(i%4), p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i, p := range want {
		msg, err := b.Read()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Stream != uint16(i%4) {
			t.Fatalf("stream %d = %d", i, msg.Stream)
		}
		if !bytes.Equal(msg.Payload, p) {
			t.Fatalf("payload %d mismatch: %d vs %d bytes", i, len(msg.Payload), len(p))
		}
	}
}

func TestWriteTooLarge(t *testing.T) {
	a, _ := Pipe()
	defer a.Close()
	if err := a.Write(0, make([]byte, MaxMessageSize+1)); err != ErrMessageTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestReadBadMagic(t *testing.T) {
	ra, wb := net.Pipe()
	defer ra.Close()
	conn := NewConn(ra)
	go wb.Write([]byte{0xFF, 0, 0, 0, 0, 0, 0})
	if _, err := conn.Read(); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestReadOversizedHeader(t *testing.T) {
	ra, wb := net.Pipe()
	defer ra.Close()
	conn := NewConn(ra)
	go wb.Write([]byte{magic, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := conn.Read(); err != ErrMessageTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestReadTruncatedPayload(t *testing.T) {
	ra, wb := net.Pipe()
	conn := NewConn(ra)
	go func() {
		wb.Write([]byte{magic, 0, 1, 0, 0, 0, 10, 'x', 'y'}) // claims 10, sends 2
		wb.Close()
	}()
	_, err := conn.Read()
	if err == nil {
		t.Fatal("expected error on truncated payload")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const writers, each = 8, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := []byte(fmt.Sprintf("w%d-m%d", w, i))
				if err := a.Write(uint16(w), payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < writers*each {
			msg, err := b.Read()
			if err != nil {
				t.Error(err)
				return
			}
			// Frames must never interleave: payload must parse back to
			// its writer's stream id.
			var wi, mi int
			if _, err := fmt.Sscanf(string(msg.Payload), "w%d-m%d", &wi, &mi); err != nil {
				t.Errorf("corrupt frame %q", msg.Payload)
				return
			}
			if uint16(wi) != msg.Stream {
				t.Errorf("frame %q on stream %d", msg.Payload, msg.Stream)
				return
			}
			got++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timeout: read %d of %d", got, writers*each)
	}
}

func TestServerEcho(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(conn *Conn, msg Message) {
		conn.Write(msg.Stream, append([]byte("echo:"), msg.Payload...))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(3, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Stream != 3 || string(msg.Payload) != "echo:ping" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestServerMultipleClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(conn *Conn, msg Message) {
		conn.Write(msg.Stream, msg.Payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			want := fmt.Sprintf("client-%d", i)
			if err := c.Write(0, []byte(want)); err != nil {
				t.Error(err)
				return
			}
			msg, err := c.Read()
			if err != nil {
				t.Error(err)
				return
			}
			if string(msg.Payload) != want {
				t.Errorf("got %q want %q", msg.Payload, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(*Conn, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(*Conn, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Give the server a moment to register the conn.
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(); err == nil {
		t.Fatal("read succeeded after server close")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if _, err := DialTimeout("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("dial timeout to closed port succeeded")
	}
}

// Property: any (stream, payload) round-trips intact.
func TestRoundTripProperty(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := func(stream uint16, payload []byte) bool {
		errc := make(chan error, 1)
		go func() { errc <- a.Write(stream, payload) }()
		msg, err := b.Read()
		if err != nil || <-errc != nil {
			return false
		}
		return msg.Stream == stream && bytes.Equal(msg.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRead256B(b *testing.B) {
	srv, err := Serve("127.0.0.1:0", func(conn *Conn, msg Message) {
		conn.Write(msg.Stream, msg.Payload)
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
