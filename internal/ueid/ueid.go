// Package ueid composes and splits the per-UE identifiers the MME
// assigns on the S1AP and S11 interfaces.
//
// Per the 3GPP standard, while a device is Active its requests carry the
// MME-assigned S1AP id (from the eNodeB) or S11 tunnel id (from the
// S-GW) rather than the GUTI. SCALE exploits this: "each MMP embeds its
// unique ID in both the S1AP-id & S11-tunnel-id, thus enabling the MLB to
// route the subsequent requests to the appropriate active MMP"
// (Section 5). This package is that embedding.
package ueid

// MMPBits is the width of the embedded MMP id; the remaining bits carry
// a per-MMP sequence number.
const MMPBits = 8

const seqMask = (uint32(1) << (32 - MMPBits)) - 1

// MaxMMP is the largest embeddable MMP id.
const MaxMMP = (1 << MMPBits) - 1

// MaxSeq is the largest embeddable per-MMP sequence number.
const MaxSeq = seqMask

// Compose packs an MMP id and a sequence number into a UE id. seq values
// above MaxSeq wrap.
func Compose(mmp uint8, seq uint32) uint32 {
	return uint32(mmp)<<(32-MMPBits) | (seq & seqMask)
}

// Split unpacks a UE id into the owning MMP id and sequence number.
func Split(id uint32) (mmp uint8, seq uint32) {
	return uint8(id >> (32 - MMPBits)), id & seqMask
}
