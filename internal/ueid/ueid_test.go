package ueid

import (
	"testing"
	"testing/quick"
)

func TestComposeSplit(t *testing.T) {
	id := Compose(7, 12345)
	mmp, seq := Split(id)
	if mmp != 7 || seq != 12345 {
		t.Fatalf("split = %d,%d", mmp, seq)
	}
}

func TestComposeSeqWraps(t *testing.T) {
	id := Compose(3, MaxSeq+5)
	mmp, seq := Split(id)
	if mmp != 3 || seq != 4 {
		t.Fatalf("wrap = %d,%d", mmp, seq)
	}
}

func TestBoundaryValues(t *testing.T) {
	for _, tc := range []struct {
		mmp uint8
		seq uint32
	}{{0, 0}, {MaxMMP, MaxSeq}, {1, MaxSeq}, {MaxMMP, 0}} {
		mmp, seq := Split(Compose(tc.mmp, tc.seq))
		if mmp != tc.mmp || seq != tc.seq {
			t.Fatalf("boundary %v: got %d,%d", tc, mmp, seq)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(mmp uint8, seq uint32) bool {
		m, s := Split(Compose(mmp, seq))
		return m == mmp && s == seq&MaxSeq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctMMPsDistinctIDs(t *testing.T) {
	seen := map[uint32]bool{}
	for mmp := 0; mmp <= MaxMMP; mmp++ {
		id := Compose(uint8(mmp), 42)
		if seen[id] {
			t.Fatalf("collision at mmp %d", mmp)
		}
		seen[id] = true
	}
}
