package ueid

import (
	"testing"
	"testing/quick"
)

func TestComposeSplit(t *testing.T) {
	id := Compose(7, 12345)
	mmp, seq := Split(id)
	if mmp != 7 || seq != 12345 {
		t.Fatalf("split = %d,%d", mmp, seq)
	}
}

func TestComposeSeqWraps(t *testing.T) {
	id := Compose(3, MaxSeq+5)
	mmp, seq := Split(id)
	if mmp != 3 || seq != 4 {
		t.Fatalf("wrap = %d,%d", mmp, seq)
	}
}

func TestBoundaryValues(t *testing.T) {
	for _, tc := range []struct {
		mmp uint8
		seq uint32
	}{{0, 0}, {MaxMMP, MaxSeq}, {1, MaxSeq}, {MaxMMP, 0}} {
		mmp, seq := Split(Compose(tc.mmp, tc.seq))
		if mmp != tc.mmp || seq != tc.seq {
			t.Fatalf("boundary %v: got %d,%d", tc, mmp, seq)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(mmp uint8, seq uint32) bool {
		m, s := Split(Compose(mmp, seq))
		return m == mmp && s == seq&MaxSeq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctMMPsDistinctIDs(t *testing.T) {
	seen := map[uint32]bool{}
	for mmp := 0; mmp <= MaxMMP; mmp++ {
		id := Compose(uint8(mmp), 42)
		if seen[id] {
			t.Fatalf("collision at mmp %d", mmp)
		}
		seen[id] = true
	}
}

// The engine mints ids with seq = counter*nShards + shardIdx, so the
// store's owning shard is recoverable from the id alone (idShard).
// That congruence must survive the seqMask wrap: for power-of-two shard
// counts, (x mod 2^(32-MMPBits)) mod nShards == x mod nShards.
func TestShardAlignmentSurvivesWrap(t *testing.T) {
	for _, nShards := range []uint32{1, 2, 8, 64, 256} {
		mask := nShards - 1
		for _, counter := range []uint32{0, 1, MaxSeq / nShards, MaxSeq/nShards + 1, MaxSeq, MaxSeq + 1, 1<<31 - 1} {
			for idx := uint32(0); idx < nShards; idx += max(1, nShards/4) {
				id := Compose(9, counter*nShards+idx)
				_, seq := Split(id)
				if seq&mask != idx&mask {
					t.Fatalf("nShards=%d counter=%d idx=%d: shard %d from wrapped seq %d",
						nShards, counter, idx, seq&mask, seq)
				}
			}
		}
	}
}

// After an MMP fails over, surviving ids still carry the dead MMP's
// index: Split must keep returning the original owner (the MLB routes
// on it, and the inheritor matches on it), and no sequence value may
// bleed into the embedded MMP bits.
// A live migration (join fill or drain) moves a context — with the MME
// UE id its original master minted — onto a VM whose shard count may
// differ from the minter's. The destination indexes the id by its own
// seq&mask, so the only property migration needs from the id itself is
// determinism: Split must be stable, owner bits intact, and the
// destination's shard derivation must agree between install and lookup
// for any power-of-two shard count.
func TestForeignPostMigrationIDs(t *testing.T) {
	const minter, dest = 2, 6
	for _, minterShards := range []uint32{1, 4, 64} {
		for _, destShards := range []uint32{1, 8, 256} {
			for _, counter := range []uint32{0, 1, MaxSeq / minterShards, MaxSeq} {
				for idx := uint32(0); idx < minterShards; idx += max(1, minterShards/2) {
					id := Compose(minter, counter*minterShards+idx)
					mmp, seq := Split(id)
					if mmp != minter {
						t.Fatalf("migrated id lost its minter: got %d, want %d", mmp, minter)
					}
					// Install and lookup on the destination both derive the
					// shard from the id alone; one Split must serve both.
					_, again := Split(id)
					if seq&(destShards-1) != again&(destShards-1) {
						t.Fatalf("dest shard unstable for id %#x", id)
					}
					// The destination's own mints can never collide with an
					// adopted id, so byMMEUEID entries stay unambiguous.
					if own := Compose(dest, seq); own == id {
						t.Fatalf("destination mint collides with migrated id %#x", id)
					}
				}
			}
		}
	}
}

func TestForeignPostFailoverIDs(t *testing.T) {
	const dead, survivor = 3, 5
	for _, seq := range []uint32{0, 1, MaxSeq, MaxSeq + 1, ^uint32(0)} {
		id := Compose(dead, seq)
		mmp, gotSeq := Split(id)
		if mmp != dead {
			t.Fatalf("seq %d bled into MMP bits: got owner %d, want %d", seq, mmp, dead)
		}
		if gotSeq != seq&MaxSeq {
			t.Fatalf("seq %d: round-tripped to %d", seq, gotSeq)
		}
		// The survivor's own ids can never collide with inherited ones.
		if other := Compose(survivor, seq); other == id {
			t.Fatalf("seq %d: survivor id collides with inherited id %#x", seq, id)
		}
	}
}
