package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzReader drives a Reader over an arbitrary buffer with an arbitrary
// op sequence and checks the decoder invariants every codec depends on:
// no panics, Remaining never grows, and the sticky error never clears
// once set (all reads after the first failure return zero values).
func FuzzReader(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 3, 'a', 'b', 'c'}, []byte{5, 5})
	f.Add([]byte{}, []byte{0, 1, 2})
	f.Add([]byte{0xFF, 0xFF}, []byte{5, 6})

	f.Fuzz(func(t *testing.T, buf, ops []byte) {
		r := NewReader(buf)
		prevRemaining := r.Remaining()
		if prevRemaining != len(buf) {
			t.Fatalf("fresh reader: Remaining = %d, want %d", prevRemaining, len(buf))
		}
		failed := false
		for _, op := range ops {
			switch op % 9 {
			case 0:
				v := r.U8()
				if failed && v != 0 {
					t.Fatalf("U8 after sticky error returned %d", v)
				}
			case 1:
				v := r.U16()
				if failed && v != 0 {
					t.Fatalf("U16 after sticky error returned %d", v)
				}
			case 2:
				v := r.U32()
				if failed && v != 0 {
					t.Fatalf("U32 after sticky error returned %d", v)
				}
			case 3:
				v := r.U64()
				if failed && v != 0 {
					t.Fatalf("U64 after sticky error returned %d", v)
				}
			case 4:
				v := r.Bool()
				if failed && v {
					t.Fatal("Bool after sticky error returned true")
				}
			case 5:
				s := r.String16()
				if failed && s != "" {
					t.Fatalf("String16 after sticky error returned %q", s)
				}
			case 6:
				b := r.Bytes16()
				if failed && len(b) != 0 {
					t.Fatalf("Bytes16 after sticky error returned %d bytes", len(b))
				}
			case 7:
				n := int(op >> 4)
				b := r.Raw(n)
				if r.Err() == nil && len(b) != n {
					t.Fatalf("Raw(%d) returned %d bytes without error", n, len(b))
				}
			case 8:
				v := r.F64()
				if failed && v != 0 && !math.IsNaN(v) {
					t.Fatalf("F64 after sticky error returned %v", v)
				}
			}
			if r.Err() != nil {
				failed = true
			} else if failed {
				t.Fatal("sticky error cleared")
			}
			rem := r.Remaining()
			if rem < 0 || rem > prevRemaining {
				t.Fatalf("Remaining went from %d to %d", prevRemaining, rem)
			}
			prevRemaining = rem
		}
		if err := r.Finish(); err == nil && r.Remaining() != 0 {
			t.Fatalf("Finish accepted %d unread bytes", r.Remaining())
		}
	})
}

// FuzzWriterRoundTrip encodes an op-driven value sequence with a Writer
// and decodes it back with a Reader: every field must round-trip
// exactly and the reader must finish with no bytes left over.
func FuzzWriterRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6}, []byte("payload-bytes-to-slice-up"))
	f.Add([]byte{5, 5, 6, 6}, []byte("short"))
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, ops, src []byte) {
		w := NewWriter(0)
		type field struct {
			op  byte
			u   uint64
			b   []byte
			f64 float64
		}
		var fields []field
		next := func(n int) []byte {
			if n > len(src) {
				n = len(src)
			}
			b := src[:n]
			src = src[n:]
			return b
		}
		for _, op := range ops {
			op %= 7
			switch op {
			case 0:
				v := uint64(op) + 17
				w.U8(uint8(v))
				fields = append(fields, field{op: op, u: v & 0xFF})
			case 1:
				b := next(2)
				v := uint64(0)
				for _, c := range b {
					v = v<<8 | uint64(c)
				}
				w.U16(uint16(v))
				fields = append(fields, field{op: op, u: v & 0xFFFF})
			case 2:
				b := next(4)
				v := uint64(0)
				for _, c := range b {
					v = v<<8 | uint64(c)
				}
				w.U32(uint32(v))
				fields = append(fields, field{op: op, u: v & 0xFFFFFFFF})
			case 3:
				b := next(8)
				v := uint64(0)
				for _, c := range b {
					v = v<<8 | uint64(c)
				}
				w.U64(v)
				fields = append(fields, field{op: op, u: v})
			case 4:
				b := next(3)
				w.Bytes16(b)
				fields = append(fields, field{op: op, b: b})
			case 5:
				b := next(5)
				w.String16(string(b))
				fields = append(fields, field{op: op, b: b})
			case 6:
				b := next(8)
				var bits uint64
				if len(b) == 8 {
					bits = binary.BigEndian.Uint64(b)
				}
				v := math.Float64frombits(bits)
				if math.IsNaN(v) {
					v = 0 // NaN != NaN breaks the equality check below
				}
				w.F64(v)
				fields = append(fields, field{op: op, f64: v})
			}
		}
		r := NewReader(w.Bytes())
		for i, fd := range fields {
			switch fd.op {
			case 0:
				if got := uint64(r.U8()); got != fd.u {
					t.Fatalf("field %d: U8 = %d, want %d", i, got, fd.u)
				}
			case 1:
				if got := uint64(r.U16()); got != fd.u {
					t.Fatalf("field %d: U16 = %d, want %d", i, got, fd.u)
				}
			case 2:
				if got := uint64(r.U32()); got != fd.u {
					t.Fatalf("field %d: U32 = %d, want %d", i, got, fd.u)
				}
			case 3:
				if got := r.U64(); got != fd.u {
					t.Fatalf("field %d: U64 = %d, want %d", i, got, fd.u)
				}
			case 4:
				if got := r.Bytes16(); !bytes.Equal(got, fd.b) {
					t.Fatalf("field %d: Bytes16 = % x, want % x", i, got, fd.b)
				}
			case 5:
				if got := r.String16(); got != string(fd.b) {
					t.Fatalf("field %d: String16 = %q, want %q", i, got, fd.b)
				}
			case 6:
				if got := r.F64(); got != fd.f64 {
					t.Fatalf("field %d: F64 = %v, want %v", i, got, fd.f64)
				}
			}
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("Finish after full round-trip: %v", err)
		}
	})
}
