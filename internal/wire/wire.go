// Package wire provides the low-level primitives the protocol codecs
// (nas, s1ap, s11, s6) share: a growing big-endian writer and a bounded
// reader with sticky error handling, so message Marshal/Unmarshal code
// reads as a flat sequence of field operations.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrShort indicates a read past the end of the buffer: a truncated or
// corrupt message.
var ErrShort = errors.New("wire: buffer too short")

// ErrTooLong indicates a length-prefixed field whose declared size
// exceeds the remaining buffer or a sanity bound.
var ErrTooLong = errors.New("wire: field length exceeds bounds")

// maxFieldLen bounds any single length-prefixed field; control-plane
// messages are small, so anything larger indicates corruption.
const maxFieldLen = 1 << 16

// Writer accumulates a big-endian encoded message. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity hint n.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Reset truncates the writer for reuse, keeping its buffer capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// writerPool recycles encode buffers across messages. Control-plane
// messages are small and minted at very high rates on the hot path
// (every frame the MLB forwards re-encodes an envelope), so reuse keeps
// the encoder allocation-free at steady state.
var writerPool = sync.Pool{New: func() any { return NewWriter(256) }}

// maxPooledCap bounds the buffers kept by the pool; an occasional
// outsized message must not pin its buffer forever.
const maxPooledCap = 64 << 10

// GetWriter returns an empty Writer from the package pool. Return it
// with PutWriter once the encoded bytes have been consumed.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter recycles w. The caller must no longer use w nor any slice
// obtained from its Bytes — the buffer will back a future message.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledCap {
		return
	}
	writerPool.Put(w)
}

// Bytes returns the encoded message. The slice aliases the writer's
// buffer; callers that keep writing must copy first.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes written.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes16 appends a 2-byte length prefix followed by b.
func (w *Writer) Bytes16(b []byte) {
	if len(b) > maxFieldLen {
		panic(fmt.Sprintf("wire: field of %d bytes exceeds maximum", len(b)))
	}
	w.U16(uint16(len(b)))
	w.buf = append(w.buf, b...)
}

// String16 appends a 2-byte length prefix followed by the string bytes.
func (w *Writer) String16(s string) { w.Bytes16([]byte(s)) }

// Raw appends b verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Pad appends n zero bytes — reserved space a caller fills in later via
// the slice returned by Bytes (the transport uses it to leave room for
// a frame header in front of the payload, keeping header+payload one
// contiguous buffer).
func (w *Writer) Pad(n int) {
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, 0)
	}
}

// Reader decodes a big-endian message with a sticky error: after the
// first failed read every subsequent read returns zero values, and Err
// reports the failure. This lets Unmarshal code decode entire messages
// without per-field error checks.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader reads from buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bool reads one byte as a boolean (nonzero = true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes16 reads a 2-byte length prefix and that many bytes. The result
// is a fresh copy.
func (r *Reader) Bytes16() []byte {
	n := int(r.U16())
	if r.err != nil {
		return nil
	}
	if n > r.Remaining() {
		r.err = ErrTooLong
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String16 reads a 2-byte length-prefixed string.
func (r *Reader) String16() string { return string(r.Bytes16()) }

// Raw reads n bytes without copying; the result aliases the input buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Finish returns r.Err(), additionally failing with ErrTooLong if
// unread bytes remain — a strict "consumed exactly" check for fixed
// message layouts.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrTooLong, r.Remaining())
	}
	return nil
}
