package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0xCDEF)
	w.U32(0x01020304)
	w.U64(0x0506070809101112)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.14159)
	w.Bytes16([]byte{9, 8, 7})
	w.String16("guti")
	w.Raw([]byte{1, 2})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %x", got)
	}
	if got := r.U16(); got != 0xCDEF {
		t.Fatalf("U16 = %x", got)
	}
	if got := r.U32(); got != 0x01020304 {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 0x0506070809101112 {
		t.Fatalf("U64 = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.Bytes16(); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("Bytes16 = %v", got)
	}
	if got := r.String16(); got != "guti" {
		t.Fatalf("String16 = %q", got)
	}
	if got := r.Raw(2); !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish = %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32() // too short
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v", r.Err())
	}
	// Every subsequent read is a zero-value no-op.
	if r.U8() != 0 || r.U16() != 0 || r.Bytes16() != nil || r.String16() != "" {
		t.Fatal("reads after error returned non-zero")
	}
	if err := r.Finish(); !errors.Is(err, ErrShort) {
		t.Fatalf("Finish = %v", err)
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.U8()
	err := r.Finish()
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("Finish = %v", err)
	}
}

func TestBytes16DeclaredTooLong(t *testing.T) {
	w := NewWriter(8)
	w.U16(100) // declares 100 bytes
	w.Raw([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if got := r.Bytes16(); got != nil {
		t.Fatalf("Bytes16 = %v", got)
	}
	if !errors.Is(r.Err(), ErrTooLong) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestBytes16Copy(t *testing.T) {
	w := NewWriter(8)
	w.Bytes16([]byte{5, 5})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes16()
	buf[2] = 9 // mutate the underlying buffer
	if got[0] != 5 {
		t.Fatal("Bytes16 did not copy")
	}
}

func TestWriterBytes16PanicsOnHuge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Writer
	w.Bytes16(make([]byte, maxFieldLen+1))
}

func TestZeroValueWriter(t *testing.T) {
	var w Writer
	w.U8(1)
	if w.Len() != 1 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestF64SpecialValues(t *testing.T) {
	for _, v := range []float64{0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		var w Writer
		w.F64(v)
		r := NewReader(w.Bytes())
		if got := r.F64(); got != v {
			t.Fatalf("F64 %v round-tripped to %v", v, got)
		}
	}
	var w Writer
	w.F64(math.NaN())
	if got := NewReader(w.Bytes()).F64(); !math.IsNaN(got) {
		t.Fatalf("NaN round-tripped to %v", got)
	}
}

// Property: arbitrary field sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, s string, raw []byte) bool {
		if len(s) > maxFieldLen || len(raw) > maxFieldLen {
			return true
		}
		var w Writer
		w.U8(a)
		w.U16(b)
		w.U32(c)
		w.U64(d)
		w.String16(s)
		w.Bytes16(raw)
		r := NewReader(w.Bytes())
		okA := r.U8() == a
		okB := r.U16() == b
		okC := r.U32() == c
		okD := r.U64() == d
		okS := r.String16() == s
		gotRaw := r.Bytes16()
		okR := bytes.Equal(gotRaw, raw) || (len(raw) == 0 && len(gotRaw) == 0)
		return okA && okB && okC && okD && okS && okR && r.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
