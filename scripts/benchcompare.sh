#!/usr/bin/env sh
# benchcompare.sh OLD.txt NEW.txt — compare two `go test -bench` outputs.
#
# Both files are plain `go test -bench . [-count N]` stdout captures. When
# benchstat is on PATH it is used (run with -count 10 for significance
# testing); otherwise an awk fallback compares the per-benchmark mean
# ns/op and prints the delta. The fallback has no statistics — treat
# deltas under ~10% as noise unless the runs were interleaved.
#
# When both arguments are BENCH_*.json reports (from scale-bench -json),
# the comparison instead runs the scale-bench regression gate: the
# calibration scenario is seeded and simulated-time, so its numbers are
# deterministic and gated hard — >5% throughput drop or >10% p99 rise
# on any procedure fails with exit 1. CI runs this against the committed
# BENCH_baseline.json on every push.
#
# Typical use:
#   go test -bench . -count 6 ./internal/mmp/ > /tmp/old.txt   # at the base commit
#   go test -bench . -count 6 ./internal/mmp/ > /tmp/new.txt   # at the candidate
#   scripts/benchcompare.sh /tmp/old.txt /tmp/new.txt
#
#   scripts/benchcompare.sh BENCH_baseline.json bench-report.json
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.txt NEW.txt" >&2
    exit 2
fi
old=$1
new=$2
[ -f "$old" ] || { echo "benchcompare: no such file: $old" >&2; exit 2; }
[ -f "$new" ] || { echo "benchcompare: no such file: $new" >&2; exit 2; }

case "$old" in
*.json)
    case "$new" in
    *.json)
        exec go run ./cmd/scale-bench -diff "$old" "$new"
        ;;
    esac
    echo "benchcompare: cannot mix a .json report with a bench text capture" >&2
    exit 2
    ;;
esac

if command -v benchstat >/dev/null 2>&1; then
    exec benchstat "$old" "$new"
fi

echo "benchcompare: benchstat not found, using mean-of-means fallback" >&2
awk -v oldfile="$old" -v newfile="$new" '
function collect(file, sum, cnt,    line, parts, n, name, val) {
    while ((getline line < file) > 0) {
        # Benchmark lines look like: BenchmarkName-8  <iters>  <ns> ns/op ...
        n = split(line, parts, /[ \t]+/)
        if (parts[1] !~ /^Benchmark/ || n < 4) continue
        for (i = 3; i < n; i++) {
            if (parts[i+1] == "ns/op") {
                name = parts[1]
                val = parts[i] + 0
                sum[name] += val
                cnt[name]++
                break
            }
        }
    }
    close(file)
}
BEGIN {
    collect(oldfile, osum, ocnt)
    collect(newfile, nsum, ncnt)
    printf "%-44s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
    for (name in osum) {
        if (!(name in nsum)) continue
        o = osum[name] / ocnt[name]
        v = nsum[name] / ncnt[name]
        printf "%-44s %12.1f %12.1f %+8.1f%%\n", name, o, v, (v - o) * 100 / o
        matched++
    }
    for (name in nsum) if (!(name in osum)) printf "%-44s %12s %12.1f %9s\n", name, "-", nsum[name] / ncnt[name], "new"
    for (name in osum) if (!(name in nsum)) printf "%-44s %12.1f %12s %9s\n", name, osum[name] / ocnt[name], "-", "gone"
    if (matched == 0) { print "benchcompare: no common benchmarks found" > "/dev/stderr"; exit 1 }
}
'
