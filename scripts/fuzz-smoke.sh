#!/usr/bin/env bash
# fuzz-smoke.sh — short fuzz pass over every decoder target, seeded by
# the committed corpora under each package's testdata/fuzz/. CI runs
# this on every push; longer local sessions just raise FUZZTIME.
#
#   FUZZTIME=10m scripts/fuzz-smoke.sh
set -eu
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-30s}

targets=(
    "./internal/nas FuzzUnmarshal"
    "./internal/s1ap FuzzUnmarshal"
    "./internal/s11 FuzzUnmarshal"
    "./internal/s6 FuzzUnmarshal"
    "./internal/wire FuzzReader"
    "./internal/wire FuzzWriterRoundTrip"
    "./internal/transport FuzzFrameRead"
    "./internal/transport FuzzFrameRoundTrip"
    "./internal/core FuzzXferChunk"
    "./internal/core FuzzCtlElastic"
    "./internal/state FuzzUETable"
)

for t in "${targets[@]}"; do
    set -- $t
    pkg=$1 fuzz=$2
    echo "== $pkg $fuzz ($FUZZTIME) =="
    go test -fuzz="^${fuzz}\$" -fuzztime="$FUZZTIME" -run '^$' "$pkg"
done
echo "fuzz-smoke: OK"
