#!/usr/bin/env bash
# lint.sh — the full local lint pass: gofmt, go vet, staticcheck (pinned
# version, skipped with a warning when the module proxy is unreachable),
# and the project's own scale-vet analyzers. CI runs the same steps.
set -u
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:"
    echo "$unformatted"
    fail=1
fi

echo "== go vet =="
go vet ./... || fail=1

echo "== staticcheck =="
SCVER=$(cat scripts/staticcheck.version)
if go run "honnef.co/go/tools/cmd/staticcheck@$SCVER" -version >/dev/null 2>&1; then
    go run "honnef.co/go/tools/cmd/staticcheck@$SCVER" ./... || fail=1
else
    # go run could not fetch/build the tool (offline sandbox); vet and
    # scale-vet still ran, so warn rather than hard-fail locally.
    echo "staticcheck: tool unavailable (offline?); skipping" >&2
fi

echo "== scale-vet =="
go run ./cmd/scale-vet ./... || fail=1

if [ "$fail" -ne 0 ]; then
    echo "lint: FAIL"
    exit 1
fi
echo "lint: OK"
